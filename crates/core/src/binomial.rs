//! The RCCE_comm **binomial tree** broadcast baseline (Section 5.2.2),
//! layered over two-sided send/receive exactly like the original: good
//! for small messages, beaten by OC-Bcast because every tree level
//! moves the payload through off-chip memory.

use crate::tree::{binomial_children, binomial_parent};
use scc_hal::{delivering, spanned, tagged, CoreId, MemRange, MsgId, Phase, Rma, RmaResult, Span};
use scc_rcce::RcceComm;

/// Collective binomial-tree broadcast. All cores must call with
/// identical `root` and `msg`; the message travels through the
/// recursive-halving tree using blocking send/receive pairs.
///
/// Journey annotations use epoch 0: the comm context is borrowed
/// immutably, so there is no per-instance invocation counter to thread
/// through (journey reconstruction pairs delivery windows per core in
/// stream order, so the epoch is advisory).
pub fn binomial_bcast<R: Rma>(
    c: &mut R,
    comm: &RcceComm,
    root: CoreId,
    msg: MemRange,
) -> RmaResult<()> {
    let p = c.num_cores();
    if p <= 1 {
        return Ok(());
    }
    let me = c.core();
    let rr = (me.index() + p - root.index()) % p;
    let abs = |rel: usize| CoreId(((root.index() + rel) % p) as u8);

    delivering(c, 0, |c| {
        if rr != 0 {
            let par = abs(binomial_parent(rr, p));
            spanned(c, Span::of(Phase::Dissemination), |c| {
                tagged(c, MsgId::new(0, par, me, 0), |c| comm.recv(c, par, msg))
            })?;
        }
        for (round, child) in binomial_children(rr, p).into_iter().enumerate() {
            let dst = abs(child);
            spanned(c, Span::new(Phase::Round, round as u32), |c| {
                tagged(c, MsgId::new(0, me, dst, 0), |c| {
                    if rr == 0 {
                        // The root reads the application buffer from
                        // off-chip memory the first time; subsequent
                        // sends hit the cache.
                        comm.send(c, dst, msg)
                    } else {
                        // Forwarding a just-received message: hot in L1
                        // (Section 5.2.2's "reading from the L1 cache"
                        // assumption).
                        comm.send_cached(c, dst, msg)
                    }
                })
            })?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;
    use scc_rcce::MpbAllocator;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 20, ..SimConfig::default() }
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(41).wrapping_add(seed)).collect()
    }

    fn check(p: usize, root: u8, len: usize) {
        let msg = pattern(len, root);
        let expect = msg.clone();
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let comm = RcceComm::new(&mut alloc, c.num_cores()).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core() == CoreId(root) {
                c.mem_write(0, &msg)?;
            }
            binomial_bcast(c, &comm, CoreId(root), r)?;
            c.mem_to_vec(r)
        })
        .unwrap_or_else(|e| panic!("p={p} root={root} len={len}: {e}"));
        for (i, r) in rep.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect, "core {i}");
        }
    }

    #[test]
    fn power_of_two_cores() {
        check(8, 0, 1000);
    }

    #[test]
    fn all_48_cores_small_and_large() {
        check(48, 0, 32);
        check(48, 0, 300 * 32); // crosses the 253-line send/recv chunking
    }

    #[test]
    fn non_zero_root_wraps() {
        check(12, 7, 500);
        check(5, 4, 64);
    }

    #[test]
    fn two_cores() {
        check(2, 1, 100);
    }

    #[test]
    fn repeated_broadcasts() {
        let rep = run_spmd(&cfg(8), |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let comm = RcceComm::new(&mut alloc, c.num_cores()).unwrap();
            let mut ok = true;
            for round in 0..5u8 {
                let len = 100 + round as usize * 300;
                let r = MemRange::new(0, len);
                let root = CoreId(round % 8);
                if c.core() == root {
                    c.mem_write(0, &pattern(len, round))?;
                }
                binomial_bcast(c, &comm, root, r)?;
                ok &= c.mem_to_vec(r)? == pattern(len, round);
            }
            Ok(ok)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }
}
