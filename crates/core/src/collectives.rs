//! Extension collectives built from the same RMA machinery — the
//! paper's stated future work ("We also plan to extend our approach to
//! other collective operations", Section 7).
//!
//! * [`OcReduce`] — an RMA-based k-ary-tree reduction: each parent owns
//!   one MPB *slot per child*; children `put` their partial vectors
//!   into their slot in parallel (the mirror image of OC-Bcast's
//!   parallel `get`s) and the parent combines them locally. Sequence
//!   flags pipeline consecutive chunks just like OC-Bcast.
//! * [`oc_allgather`] — allgather by composing `P` OC-Bcast rounds, one
//!   per contributor (a simple but correct composition; each round
//!   reuses the broadcast pipeline).
//!
//! Reductions operate on little-endian `u64` vectors, the common case
//! for HPC counters; the element combiner is a closed enum so the
//! operation is identical on every core by construction.

use crate::ocbcast::OcBcast;
use crate::scatter_allgather::slice_range;
use crate::tree::KaryTree;
use scc_hal::{CoreId, FlagValue, MemRange, MpbAddr, Rma, RmaResult, CACHE_LINE_BYTES};
use scc_rcce::{MpbAllocator, MpbExhausted, MpbRegion};

/// Elementwise combiner for reductions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Reusable RMA reduction context (symmetric allocation, like
/// [`OcBcast`]).
#[derive(Clone, Debug)]
pub struct OcReduce {
    k: usize,
    /// This core's "slot free" notification flag (set by the parent).
    notify: MpbRegion,
    /// Done flags, one per child slot (set by children after their put).
    done: MpbRegion,
    /// `k` payload slots of `slot_lines` each, in this core's MPB.
    slots: MpbRegion,
    slot_lines: usize,
    seq: u32,
}

impl OcReduce {
    /// Reserve `1 + k` flag lines and `k` equal payload slots from the
    /// remaining MPB space.
    pub fn new(alloc: &mut MpbAllocator, k: usize) -> Result<OcReduce, MpbExhausted> {
        assert!(k >= 1, "tree degree must be at least 1");
        let slot_lines = ((alloc.lines_free().saturating_sub(1 + k)) / k).max(1);
        Self::with_slot_lines(alloc, k, slot_lines)
    }

    /// Like [`OcReduce::new`] but with an explicit per-child slot size,
    /// so the context can share the MPB with a broadcast context.
    pub fn with_slot_lines(
        alloc: &mut MpbAllocator,
        k: usize,
        slot_lines: usize,
    ) -> Result<OcReduce, MpbExhausted> {
        assert!(k >= 1, "tree degree must be at least 1");
        assert!(slot_lines >= 1);
        let notify = alloc.alloc(1)?;
        let done = alloc.alloc(k)?;
        let slots = alloc.alloc(slot_lines * k)?;
        Ok(OcReduce { k, notify, done, slots, slot_lines, seq: 0 })
    }

    pub fn release(self, alloc: &mut MpbAllocator) {
        alloc.free(self.notify);
        alloc.free(self.done);
        alloc.free(self.slots);
    }

    /// Bytes a single pipeline chunk carries.
    pub fn chunk_bytes(&self) -> usize {
        self.slot_lines * CACHE_LINE_BYTES
    }

    fn slot_line(&self, child: usize) -> usize {
        self.slots.line(child * self.slot_lines)
    }

    /// Collective reduction of the `u64` vector in `msg` (length must
    /// be a multiple of 8 and identical everywhere). The elementwise
    /// result lands in `root`'s `msg` range; every core's own buffer is
    /// used as scratch (its partial results accumulate in place, like
    /// `MPI_IN_PLACE`).
    pub fn reduce<R: Rma>(
        &mut self,
        c: &mut R,
        root: CoreId,
        msg: MemRange,
        op: ReduceOp,
    ) -> RmaResult<()> {
        assert!(msg.len.is_multiple_of(8), "reduction vectors are u64-aligned");
        let p = c.num_cores();
        if msg.len == 0 || p <= 1 {
            return Ok(());
        }
        let tree = KaryTree::new(p, self.k, root);
        let me = c.core();
        let children = tree.children(me);
        let parent = tree.parent(me);
        let my_slot = tree.child_index(me);

        let chunk_bytes = self.chunk_bytes().min(msg.len);
        let n_chunks = msg.len.div_ceil(chunk_bytes);
        let base = self.seq;
        self.seq += n_chunks as u32;

        let mut acc = vec![0u8; chunk_bytes];
        let mut incoming = vec![0u8; chunk_bytes];

        for chunk in 0..n_chunks {
            let seq = base + chunk as u32 + 1;
            let off = chunk * chunk_bytes;
            let len = (msg.len - off).min(chunk_bytes);
            let lines = scc_hal::bytes_to_lines(len);
            let part = msg.slice(off, len);

            // Combine the children's partial vectors into our own.
            if !children.is_empty() {
                for slot in 0..children.len() {
                    c.flag_wait_local(self.done.line(slot), &mut |v| v.0 >= seq)?;
                }
                c.mem_read(part.offset, &mut acc[..len])?;
                for slot in 0..children.len() {
                    // Stage the slot into private scratch, then combine.
                    let scratch =
                        MemRange::new(msg.end().next_multiple_of(32), chunk_bytes).slice(0, len);
                    c.get_to_mem(MpbAddr::new(me, self.slot_line(slot)), scratch)?;
                    c.mem_read(scratch.offset, &mut incoming[..len])?;
                    combine(op, &mut acc[..len], &incoming[..len]);
                }
                c.mem_write(part.offset, &acc[..len])?;
                // Slots consumed: let the children reuse them.
                for child in &children {
                    c.flag_put(MpbAddr::new(*child, self.notify.first_line), FlagValue(seq))?;
                }
            }

            // Ship our partial result up, once the parent freed our slot
            // for this round (pipelining lag of one chunk).
            if let Some(par) = parent {
                if chunk >= 1 {
                    c.flag_wait_local(self.notify.first_line, &mut |v| v.0 >= seq - 1)?;
                }
                let slot = my_slot.expect("non-root has a slot");
                let dst = MpbAddr::new(par, self.slot_line(slot));
                debug_assert!(lines <= self.slot_lines);
                c.put_from_mem(part, dst)?;
                c.flag_put(MpbAddr::new(par, self.done.line(slot)), FlagValue(seq))?;
            }
        }

        // Drain: every parent consumed its children's final chunk above
        // (the combine precedes its own upward put), so slot *reads*
        // are all complete when everyone returns. Non-roots still wait
        // for the final "slot free" notification, so the next
        // collective cannot overwrite a slot the parent is mid-read on.
        if parent.is_some() {
            let last = base + n_chunks as u32;
            c.flag_wait_local(self.notify.first_line, &mut |v| v.0 >= last)?;
        }
        Ok(())
    }
}

fn combine(op: ReduceOp, acc: &mut [u8], other: &[u8]) {
    debug_assert_eq!(acc.len(), other.len());
    for (a, b) in acc.chunks_exact_mut(8).zip(other.chunks_exact(8)) {
        let va = u64::from_le_bytes(a.try_into().expect("8-byte chunk"));
        let vb = u64::from_le_bytes(b.try_into().expect("8-byte chunk"));
        a.copy_from_slice(&op.apply(va, vb).to_le_bytes());
    }
}

impl OcReduce {
    /// Tree barrier over the reduce context's flag machinery, with no
    /// payload: children report up through the done flags, the root's
    /// release wave travels down through the notify flags. One
    /// sequence number per episode; freely interleavable with
    /// [`OcReduce::reduce`] calls on the same context.
    pub fn barrier<R: Rma>(&mut self, c: &mut R, root: CoreId) -> RmaResult<()> {
        let p = c.num_cores();
        if p <= 1 {
            return Ok(());
        }
        self.seq += 1;
        let seq = self.seq;
        let tree = KaryTree::new(p, self.k, root);
        let me = c.core();
        let children = tree.children(me);

        // Up phase: wait for the whole subtree, then report.
        for slot in 0..children.len() {
            c.flag_wait_local(self.done.line(slot), &mut |v| v.0 >= seq)?;
        }
        if let Some(par) = tree.parent(me) {
            let slot = tree.child_index(me).expect("non-root slot");
            c.flag_put(MpbAddr::new(par, self.done.line(slot)), FlagValue(seq))?;
            // Down phase: wait for the release...
            c.flag_wait_local(self.notify.first_line, &mut |v| v.0 >= seq)?;
        }
        // ...and forward it.
        for child in &children {
            c.flag_put(MpbAddr::new(*child, self.notify.first_line), FlagValue(seq))?;
        }
        Ok(())
    }
}

/// Collective allreduce: elementwise reduction of every core's `msg`
/// vector, with the result delivered to **all** cores — composed from
/// the RMA reduction and OC-Bcast, the natural pairing of the two tree
/// pipelines.
pub fn oc_allreduce<R: Rma>(
    c: &mut R,
    red: &mut OcReduce,
    bc: &mut OcBcast,
    root: CoreId,
    msg: MemRange,
    op: ReduceOp,
) -> RmaResult<()> {
    red.reduce(c, root, msg, op)?;
    bc.bcast(c, root, msg)
}

/// Collective allgather: core `j`'s slice of `msg` (as carved by
/// [`slice_range`]) is distributed to every core, so afterwards all
/// cores hold the identical, fully populated `msg` range. Implemented
/// as `P` pipelined OC-Bcast rounds, one per contributor.
pub fn oc_allgather<R: Rma>(c: &mut R, bc: &mut OcBcast, msg: MemRange) -> RmaResult<()> {
    let p = c.num_cores();
    for j in 0..p {
        let slice = slice_range(msg, p, j);
        if slice.len > 0 {
            bc.bcast(c, CoreId(j as u8), slice)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocbcast::OcConfig;
    use scc_hal::RmaExt;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 20, ..SimConfig::default() }
    }

    fn check_reduce(p: usize, k: usize, root: u8, elems: usize, op: ReduceOp) {
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u64>> {
            let mut alloc = MpbAllocator::new();
            let mut red = OcReduce::new(&mut alloc, k).unwrap();
            let me = c.core().index() as u64;
            let v: Vec<u64> = (0..elems as u64).map(|i| i * 1000 + me).collect();
            let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
            c.mem_write(0, &bytes)?;
            red.reduce(c, CoreId(root), MemRange::new(0, bytes.len()), op)?;
            let out = c.mem_to_vec(MemRange::new(0, bytes.len()))?;
            Ok(out.chunks_exact(8).map(|b| u64::from_le_bytes(b.try_into().unwrap())).collect())
        })
        .unwrap_or_else(|e| panic!("p={p} k={k} elems={elems}: {e}"));
        let expect: Vec<u64> = (0..elems as u64)
            .map(|i| (0..p as u64).map(|me| i * 1000 + me).reduce(|a, b| op.apply(a, b)).unwrap())
            .collect();
        assert_eq!(rep.results[root as usize].as_ref().unwrap(), &expect);
    }

    #[test]
    fn sum_small_vector() {
        check_reduce(8, 7, 0, 10, ReduceOp::Sum);
    }

    #[test]
    fn sum_multi_chunk() {
        // Force several pipeline chunks: 2000 u64 = 16 KB >> one slot.
        check_reduce(12, 3, 0, 2000, ReduceOp::Sum);
    }

    #[test]
    fn min_max_and_other_roots() {
        check_reduce(12, 7, 5, 64, ReduceOp::Min);
        check_reduce(7, 2, 6, 33, ReduceOp::Max);
    }

    #[test]
    fn full_chip_reduce() {
        check_reduce(48, 7, 0, 500, ReduceOp::Sum);
    }

    #[test]
    fn two_cores_and_deep_chain() {
        check_reduce(2, 7, 1, 16, ReduceOp::Sum);
        check_reduce(6, 1, 0, 8, ReduceOp::Sum);
    }

    #[test]
    fn repeated_reductions_pipeline_cleanly() {
        let rep = run_spmd(&cfg(8), |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mut red = OcReduce::new(&mut alloc, 3).unwrap();
            let me = c.core().index() as u64;
            let mut ok = true;
            for round in 1..=5u64 {
                let v: Vec<u64> = (0..50).map(|i| i + me * round).collect();
                let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
                c.mem_write(0, &bytes)?;
                red.reduce(c, CoreId(0), MemRange::new(0, bytes.len()), ReduceOp::Sum)?;
                if c.core().index() == 0 {
                    let out = c.mem_to_vec(MemRange::new(0, bytes.len()))?;
                    let got: Vec<u64> = out
                        .chunks_exact(8)
                        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                        .collect();
                    let expect: Vec<u64> =
                        (0..50u64).map(|i| (0..8u64).map(|m| i + m * round).sum()).collect();
                    ok &= got == expect;
                }
            }
            Ok(ok)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn tree_barrier_synchronizes() {
        use scc_hal::Time;
        let n = 9;
        let rep = run_spmd(&cfg(n), move |c| -> RmaResult<(Time, Time)> {
            let mut alloc = MpbAllocator::new();
            let mut red = OcReduce::with_slot_lines(&mut alloc, 3, 2).unwrap();
            let me = c.core().index() as u64;
            c.compute(Time::from_ns(2_000 * me * me));
            let before = c.now();
            red.barrier(c, CoreId(0))?;
            Ok((before, c.now()))
        })
        .unwrap();
        let results: Vec<_> = rep.results.into_iter().map(|r| r.unwrap()).collect();
        let slowest = results.iter().map(|(b, _)| *b).max().unwrap();
        for (i, (_, after)) in results.iter().enumerate() {
            assert!(*after >= slowest, "core {i} escaped the barrier early");
        }
    }

    #[test]
    fn tree_barrier_interleaves_with_reductions() {
        let rep = run_spmd(&cfg(8), |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mut red = OcReduce::with_slot_lines(&mut alloc, 7, 2).unwrap();
            let me = c.core().index() as u64;
            let mut ok = true;
            for round in 1..=4u64 {
                red.barrier(c, CoreId(0))?;
                let bytes: Vec<u8> = (me * round).to_le_bytes().to_vec();
                c.mem_write(0, &bytes)?;
                red.reduce(c, CoreId(0), MemRange::new(0, 8), ReduceOp::Sum)?;
                if c.core().index() == 0 {
                    let mut b = [0u8; 8];
                    c.mem_read(0, &mut b)?;
                    let expect: u64 = (0..8u64).map(|m| m * round).sum();
                    ok &= u64::from_le_bytes(b) == expect;
                }
                red.barrier(c, CoreId(3))?;
            }
            Ok(ok)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn allreduce_delivers_the_sum_everywhere() {
        let p = 12;
        let elems = 40usize;
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u64>> {
            let mut alloc = MpbAllocator::new();
            let mut red = OcReduce::with_slot_lines(&mut alloc, 7, 4).unwrap();
            let mut bc = OcBcast::new(&mut alloc, OcConfig::default()).unwrap();
            let me = c.core().index() as u64;
            let v: Vec<u64> = (0..elems as u64).map(|i| i * 7 + me).collect();
            let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
            c.mem_write(0, &bytes)?;
            oc_allreduce(
                c,
                &mut red,
                &mut bc,
                CoreId(2),
                MemRange::new(0, bytes.len()),
                ReduceOp::Sum,
            )?;
            let out = c.mem_to_vec(MemRange::new(0, bytes.len()))?;
            Ok(out.chunks_exact(8).map(|b| u64::from_le_bytes(b.try_into().unwrap())).collect())
        })
        .unwrap();
        let expect: Vec<u64> =
            (0..elems as u64).map(|i| (0..p as u64).map(|m| i * 7 + m).sum()).collect();
        for (i, r) in rep.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect, "core {i}");
        }
    }

    #[test]
    fn allgather_populates_every_core() {
        let p = 12;
        let len = 3000;
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let mut bc = OcBcast::new(&mut alloc, OcConfig::default()).unwrap();
            let msg = MemRange::new(0, len);
            // Each core fills only its own slice.
            let mine = slice_range(msg, p, c.core().index());
            let fill: Vec<u8> = (0..mine.len).map(|i| (i as u8) ^ (c.core().0 * 7)).collect();
            c.mem_write(mine.offset, &fill)?;
            oc_allgather(c, &mut bc, msg)?;
            c.mem_to_vec(msg)
        })
        .unwrap();
        // Expected: concatenation of every core's fill.
        let msg = MemRange::new(0, len);
        let mut expect = vec![0u8; len];
        for j in 0..p {
            let s = slice_range(msg, p, j);
            for i in 0..s.len {
                expect[s.offset + i] = (i as u8) ^ (j as u8 * 7);
            }
        }
        for (i, r) in rep.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect, "core {i}");
        }
    }
}
