//! OC-Bcast: the paper's pipelined k-ary-tree broadcast over one-sided
//! RMA (Section 4).
//!
//! Per chunk, an intermediate core performs exactly the paper's five
//! steps once its notification flag shows the chunk is available in its
//! parent's MPB:
//!
//! 1. forward the notification to its successors in the *parent's*
//!    binary notification tree;
//! 2. `get` the chunk from the parent's MPB into its own MPB
//!    (after making sure its own children are done with the buffer
//!    being overwritten — double buffering);
//! 3. set its `done` flag in the parent's MPB;
//! 4. notify its own children through its *own* notification tree;
//! 5. `get` the chunk from its MPB to private off-chip memory.
//!
//! Large messages are cut into chunks of `M_oc = 96` cache lines that
//! stream down the tree through **two** MPB buffers per core
//! (Section 4.2): while the children pull chunk `c` from buffer
//! `c mod 2`, the parent already stores chunk `c+1` into the other
//! buffer. A buffer may be overwritten by chunk `c` only once all
//! children acknowledged chunk `c − 2`.
//!
//! All flags carry *absolute sequence numbers* that keep growing across
//! broadcast invocations (every core advances its counter by the same
//! chunk count), so back-to-back broadcasts — even from different
//! roots — need no flag resets and no separating barrier: stale values
//! are always strictly smaller than any sequence they could be
//! mistaken for.

use crate::reliable::{probe_remote_flag, wait_ge_or_recover, RelStats, Reliability};
use crate::topo::{TreeLayout, TreeStrategy};
use crate::tree::NotifyGroup;
use scc_hal::{
    bytes_to_lines, delivering, spanned, tagged, CoreId, FlagValue, MemRange, MpbAddr, MsgId,
    Phase, Rma, RmaResult, Span, CACHE_LINE_BYTES,
};
use scc_rcce::{MpbAllocator, MpbExhausted, MpbRegion};

/// Tuning parameters of OC-Bcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OcConfig {
    /// Propagation-tree degree `k` (the paper recommends 7 on 48 cores).
    pub k: usize,
    /// Payload chunk size in cache lines (`M_oc`; 96 in the paper).
    pub chunk_lines: usize,
    /// Use two MPB buffers (the paper's double buffering). Disabling
    /// falls back to a single buffer — kept for the ablation bench.
    pub double_buffer: bool,
    /// Notification-tree fan-out (2 = the paper's binary tree; `>= k`
    /// degenerates to sequential notification by the parent — the
    /// design point the paper argues against).
    pub notify_fanout: usize,
    /// Let leaves `get` the chunk straight from the parent's MPB to
    /// private memory, skipping their own MPB — the optimization the
    /// paper describes in Section 5.4 but deliberately leaves out.
    pub leaf_direct: bool,
    /// How the propagation tree is laid out over the mesh: the paper's
    /// id-based k-ary heap, or the topology-aware extension.
    pub strategy: TreeStrategy,
}

impl Default for OcConfig {
    fn default() -> Self {
        OcConfig {
            k: 7,
            chunk_lines: 96,
            double_buffer: true,
            notify_fanout: 2,
            leaf_direct: false,
            strategy: TreeStrategy::ById,
        }
    }
}

impl OcConfig {
    pub fn with_k(k: usize) -> OcConfig {
        OcConfig { k, ..OcConfig::default() }
    }
}

/// A reusable OC-Bcast context: MPB layout plus the cross-broadcast
/// sequence counter. Create it identically on every core (symmetric
/// allocation), then call [`OcBcast::bcast`] collectively.
#[derive(Clone, Debug)]
pub struct OcBcast {
    cfg: OcConfig,
    /// One line: this core's notification flag.
    notify: MpbRegion,
    /// `k` lines: done flags, one per child slot.
    done: MpbRegion,
    /// Payload buffers (two with double buffering, one without).
    bufs: [MpbRegion; 2],
    /// Sequence of the last chunk of the previous broadcast.
    seq: u32,
    /// Invocation counter, stamped into [`MsgId`]s and delivery windows
    /// so journeys of back-to-back broadcasts stay distinguishable.
    epoch: u32,
    /// Recovery machinery, present only on contexts built with
    /// [`OcBcast::new_reliable`].
    rel: Option<OcRel>,
}

/// Extra MPB state of a reliable OC-Bcast context. The three lines are
/// locally published progress mirrors and a probe landing zone; see
/// [`crate::reliable`] for the recovery principle.
#[derive(Clone, Debug)]
struct OcRel {
    policy: Reliability,
    /// Local publish: sequence of the newest chunk available in our
    /// own payload buffers. A child whose notification was lost probes
    /// this on its tree parent.
    avail: MpbRegion,
    /// Local publish: sequence of the newest chunk we acknowledged to
    /// our parent. A parent whose done flag was lost probes this on
    /// the child.
    consumed: MpbRegion,
    /// Landing line for probes.
    scratch: MpbRegion,
    stats: RelStats,
}

impl OcBcast {
    /// Reserve the context's MPB lines: `1 + k` flag lines plus the
    /// payload buffers. With the default 96-line chunks this fits for
    /// every `k ≤ 63`; larger configurations fail cleanly here.
    pub fn new(alloc: &mut MpbAllocator, cfg: OcConfig) -> Result<OcBcast, MpbExhausted> {
        assert!(cfg.k >= 1, "tree degree must be at least 1");
        assert!(cfg.chunk_lines >= 1, "chunks must hold at least one line");
        assert!(cfg.notify_fanout >= 1);
        let notify = alloc.alloc(1)?;
        let done = alloc.alloc(cfg.k)?;
        let buf0 = alloc.alloc(cfg.chunk_lines)?;
        let buf1 = if cfg.double_buffer { alloc.alloc(cfg.chunk_lines)? } else { buf0 };
        Ok(OcBcast { cfg, notify, done, bufs: [buf0, buf1], seq: 0, epoch: 0, rel: None })
    }

    /// Like [`OcBcast::new`] plus the recovery state [`bcast_reliable`]
    /// needs: three extra flag lines (available-progress mirror,
    /// consumed-progress mirror, probe scratch). The plain layout is
    /// allocated first, so a reliable context with a disabled policy
    /// produces bit-identical broadcasts to a plain one.
    ///
    /// `leaf_direct` is unsupported here: a direct-to-memory leaf has
    /// no MPB copy of the chunk, so it could not republish progress
    /// for its parent's probes.
    ///
    /// [`bcast_reliable`]: OcBcast::bcast_reliable
    pub fn new_reliable(
        alloc: &mut MpbAllocator,
        cfg: OcConfig,
        policy: Reliability,
    ) -> Result<OcBcast, MpbExhausted> {
        assert!(!cfg.leaf_direct, "leaf_direct is unsupported on the reliable path");
        let mut bc = OcBcast::new(alloc, cfg)?;
        let avail = alloc.alloc(1)?;
        let consumed = alloc.alloc(1)?;
        let scratch = alloc.alloc(1)?;
        bc.rel = Some(OcRel { policy, avail, consumed, scratch, stats: RelStats::default() });
        Ok(bc)
    }

    /// Release the context's MPB lines.
    pub fn release(self, alloc: &mut MpbAllocator) {
        alloc.free(self.notify);
        alloc.free(self.done);
        alloc.free(self.bufs[0]);
        if self.cfg.double_buffer {
            alloc.free(self.bufs[1]);
        }
        if let Some(rel) = self.rel {
            alloc.free(rel.avail);
            alloc.free(rel.consumed);
            alloc.free(rel.scratch);
        }
    }

    pub fn config(&self) -> &OcConfig {
        &self.cfg
    }

    /// Collective broadcast: the `root` sends `msg.len` bytes starting
    /// at `msg.offset` of its private memory; every other core receives
    /// into the same range of its own private memory. All cores must
    /// call with identical `root` and `msg`.
    ///
    /// A zero-length broadcast is a no-op (it does not synchronize).
    pub fn bcast<R: Rma>(&mut self, c: &mut R, root: CoreId, msg: MemRange) -> RmaResult<()> {
        let p = c.num_cores();
        if msg.len == 0 || p <= 1 {
            return Ok(());
        }
        let total_lines = bytes_to_lines(msg.len);
        let n_chunks = total_lines.div_ceil(self.cfg.chunk_lines);
        let tree = TreeLayout::build(self.cfg.strategy, p, self.cfg.k, root);
        let me = c.core();

        let base = self.seq;
        self.seq += n_chunks as u32;
        let epoch = self.epoch;
        self.epoch += 1;

        let parent = tree.parent(me);
        let children = tree.children(me).to_vec();
        let parent_group = parent
            .and_then(|par| NotifyGroup::new(par, tree.children(par), self.cfg.notify_fanout));
        let own_group = NotifyGroup::new(me, &children, self.cfg.notify_fanout);
        let my_done_slot = tree.child_index(me);
        let is_leaf = children.is_empty();
        let leaf_direct = is_leaf && self.cfg.leaf_direct;

        delivering(c, epoch, |c| {
            for chunk in 0..n_chunks {
                let seq = base + chunk as u32 + 1;
                let buf = self.buf_for(chunk);
                let byte_off = chunk * self.cfg.chunk_lines * CACHE_LINE_BYTES;
                let len = (msg.len - byte_off).min(self.cfg.chunk_lines * CACHE_LINE_BYTES);
                let lines = bytes_to_lines(len);
                let part = msg.slice(byte_off, len);
                // First cache line of this chunk within the message.
                let fl = (chunk * self.cfg.chunk_lines) as u32;

                let ch = chunk as u32;
                if me == root {
                    // Double buffering: chunk `c` may overwrite its
                    // buffer once the children are done with `c - lag`.
                    spanned(c, Span::new(Phase::BufferWait, ch), |c| {
                        self.wait_children_done(c, &children, base, seq, chunk)
                    })?;
                    spanned(c, Span::new(Phase::Dissemination, ch), |c| {
                        tagged(c, MsgId::new(epoch, me, me, fl), |c| {
                            c.put_from_mem(part, MpbAddr::new(me, buf.first_line))
                        })
                    })?;
                    spanned(c, Span::new(Phase::NotifyForward, ch), |c| {
                        self.notify_forward(c, own_group.as_ref(), me, epoch, fl, seq)
                    })?;
                    // The root's copy is already in place; nothing to get.
                } else {
                    // (0) learn that the chunk is in the parent's MPB.
                    spanned(c, Span::new(Phase::NotifyWait, ch), |c| {
                        c.flag_wait_local(self.notify.first_line, &mut |v| v.0 >= seq)
                    })?;
                    // (i) forward the notification inside the parent's
                    // group.
                    spanned(c, Span::new(Phase::NotifyForward, ch), |c| {
                        self.notify_forward(c, parent_group.as_ref(), me, epoch, fl, seq)
                    })?;
                    let par = parent.expect("non-root has a parent");
                    if leaf_direct {
                        // Section 5.4 optimization: straight to memory.
                        spanned(c, Span::new(Phase::Dissemination, ch), |c| {
                            tagged(c, MsgId::new(epoch, par, me, fl), |c| {
                                c.get_to_mem(MpbAddr::new(par, buf.first_line), part)
                            })
                        })?;
                        // (iii) tell the parent the buffer may be reused.
                        spanned(c, Span::new(Phase::Ack, ch), |c| {
                            self.signal_done(c, par, my_done_slot, epoch, fl, seq)
                        })?;
                    } else {
                        // (ii) pull the chunk into our own MPB once our
                        // own children are done with this buffer.
                        spanned(c, Span::new(Phase::BufferWait, ch), |c| {
                            self.wait_children_done(c, &children, base, seq, chunk)
                        })?;
                        spanned(c, Span::new(Phase::Dissemination, ch), |c| {
                            tagged(c, MsgId::new(epoch, par, me, fl), |c| {
                                c.get_to_mpb(
                                    MpbAddr::new(par, buf.first_line),
                                    buf.first_line,
                                    lines,
                                )
                            })
                        })?;
                        // (iii) release the parent's buffer.
                        spanned(c, Span::new(Phase::Ack, ch), |c| {
                            self.signal_done(c, par, my_done_slot, epoch, fl, seq)
                        })?;
                        // (iv) notify our own children.
                        spanned(c, Span::new(Phase::NotifyForward, ch), |c| {
                            self.notify_forward(c, own_group.as_ref(), me, epoch, fl, seq)
                        })?;
                        // (v) copy to private off-chip memory.
                        spanned(c, Span::new(Phase::Dissemination, ch), |c| {
                            tagged(c, MsgId::new(epoch, me, me, fl), |c| {
                                c.get_to_mem(MpbAddr::new(me, buf.first_line), part)
                            })
                        })?;
                    }
                }
            }

            // Before returning, make sure nobody will still read our
            // MPB: children must have consumed the final chunks. (This
            // is what makes back-to-back broadcasts from different
            // roots safe without a barrier.)
            if !children.is_empty() {
                let last_seq = base + n_chunks as u32;
                spanned(c, Span::of(Phase::Drain), |c| {
                    for slot in 0..children.len() {
                        c.flag_wait_local(self.done.line(slot), &mut |v| v.0 >= last_seq)?;
                    }
                    Ok(())
                })?;
            }
            Ok(())
        })
    }

    /// What the recovery machinery did so far on this core (`None` on
    /// contexts built with [`OcBcast::new`]).
    pub fn rel_stats(&self) -> Option<RelStats> {
        self.rel.as_ref().map(|r| r.stats)
    }

    /// Reliable collective broadcast: the paper's protocol with a
    /// deadline on every flag wait and probe-based recovery from lost
    /// notifications and done flags (see [`crate::reliable`]).
    ///
    /// On a context without recovery state, or with a disabled policy,
    /// this delegates to [`OcBcast::bcast`] — the failure-free fast
    /// path stays byte-identical. Otherwise the five per-chunk steps
    /// run with these changes:
    ///
    /// * after storing a chunk in its own buffer, a core locally
    ///   publishes its *avail* mirror; after releasing the parent's
    ///   buffer, its *consumed* mirror — local puts cannot be lost;
    /// * a notify wait that times out probes the tree parent's avail
    ///   mirror, bypassing the (lossy) notification relay tree — the
    ///   route-around that also covers a relay core slowed past the
    ///   deadline;
    /// * a done wait (buffer gate or final drain) that times out
    ///   probes the child's consumed mirror and, while it lags,
    ///   re-sends the child's notification with our avail high-water
    ///   mark (monotone flags make the re-send idempotent; the
    ///   buffer-parity gate guarantees a chunk a child still waits for
    ///   was never overwritten).
    ///
    /// A clean collective return implies every core drained its
    /// children's acks for the final chunk: delivery to all
    /// destinations is verified, not assumed.
    pub fn bcast_reliable<R: Rma>(
        &mut self,
        c: &mut R,
        root: CoreId,
        msg: MemRange,
    ) -> RmaResult<()> {
        let Some(rel) = self.rel.clone() else { return self.bcast(c, root, msg) };
        if !rel.policy.enabled {
            return self.bcast(c, root, msg);
        }
        let p = c.num_cores();
        if msg.len == 0 || p <= 1 {
            return Ok(());
        }
        let total_lines = bytes_to_lines(msg.len);
        let n_chunks = total_lines.div_ceil(self.cfg.chunk_lines);
        let tree = TreeLayout::build(self.cfg.strategy, p, self.cfg.k, root);
        let me = c.core();

        let base = self.seq;
        self.seq += n_chunks as u32;
        let epoch = self.epoch;
        self.epoch += 1;

        let parent = tree.parent(me);
        let children = tree.children(me).to_vec();
        let parent_group = parent
            .and_then(|par| NotifyGroup::new(par, tree.children(par), self.cfg.notify_fanout));
        let own_group = NotifyGroup::new(me, &children, self.cfg.notify_fanout);
        let my_done_slot = tree.child_index(me);

        let policy = rel.policy;
        let avail_line = rel.avail.first_line;
        let consumed_line = rel.consumed.first_line;
        let scratch = rel.scratch.first_line;
        let mut stats = RelStats::default();
        // Sequence of the newest chunk in our own buffers, mirrored on
        // the avail line; what we can honestly re-notify children with.
        let mut my_avail = base;

        let res = delivering(c, epoch, |c| {
            for chunk in 0..n_chunks {
                let seq = base + chunk as u32 + 1;
                let buf = self.buf_for(chunk);
                let byte_off = chunk * self.cfg.chunk_lines * CACHE_LINE_BYTES;
                let len = (msg.len - byte_off).min(self.cfg.chunk_lines * CACHE_LINE_BYTES);
                let lines = bytes_to_lines(len);
                let part = msg.slice(byte_off, len);
                let fl = (chunk * self.cfg.chunk_lines) as u32;

                let ch = chunk as u32;
                if me == root {
                    spanned(c, Span::new(Phase::BufferWait, ch), |c| {
                        self.wait_children_done_rel(
                            c,
                            &children,
                            base,
                            seq,
                            chunk,
                            &policy,
                            &mut stats,
                            consumed_line,
                            scratch,
                            my_avail,
                        )
                    })?;
                    spanned(c, Span::new(Phase::Dissemination, ch), |c| {
                        tagged(c, MsgId::new(epoch, me, me, fl), |c| {
                            c.put_from_mem(part, MpbAddr::new(me, buf.first_line))
                        })
                    })?;
                    c.flag_put(MpbAddr::new(me, avail_line), FlagValue(seq))?;
                    my_avail = seq;
                    spanned(c, Span::new(Phase::NotifyForward, ch), |c| {
                        self.notify_forward(c, own_group.as_ref(), me, epoch, fl, seq)
                    })?;
                } else {
                    let par = parent.expect("non-root has a parent");
                    // (0) learn the chunk is in the parent's MPB — or,
                    // if the notification was lost, find out by
                    // probing the parent's avail mirror directly.
                    spanned(c, Span::new(Phase::NotifyWait, ch), |c| {
                        wait_ge_or_recover(
                            c,
                            &policy,
                            &mut stats,
                            self.notify.first_line,
                            seq,
                            |c, stats| {
                                Ok(probe_remote_flag(c, stats, par, avail_line, scratch)? >= seq)
                            },
                        )
                    })?;
                    spanned(c, Span::new(Phase::NotifyForward, ch), |c| {
                        self.notify_forward(c, parent_group.as_ref(), me, epoch, fl, seq)
                    })?;
                    spanned(c, Span::new(Phase::BufferWait, ch), |c| {
                        self.wait_children_done_rel(
                            c,
                            &children,
                            base,
                            seq,
                            chunk,
                            &policy,
                            &mut stats,
                            consumed_line,
                            scratch,
                            my_avail,
                        )
                    })?;
                    spanned(c, Span::new(Phase::Dissemination, ch), |c| {
                        tagged(c, MsgId::new(epoch, par, me, fl), |c| {
                            c.get_to_mpb(MpbAddr::new(par, buf.first_line), buf.first_line, lines)
                        })
                    })?;
                    c.flag_put(MpbAddr::new(me, avail_line), FlagValue(seq))?;
                    my_avail = seq;
                    spanned(c, Span::new(Phase::Ack, ch), |c| {
                        self.signal_done(c, par, my_done_slot, epoch, fl, seq)
                    })?;
                    c.flag_put(MpbAddr::new(me, consumed_line), FlagValue(seq))?;
                    spanned(c, Span::new(Phase::NotifyForward, ch), |c| {
                        self.notify_forward(c, own_group.as_ref(), me, epoch, fl, seq)
                    })?;
                    spanned(c, Span::new(Phase::Dissemination, ch), |c| {
                        tagged(c, MsgId::new(epoch, me, me, fl), |c| {
                            c.get_to_mem(MpbAddr::new(me, buf.first_line), part)
                        })
                    })?;
                }
            }

            // Verified drain: children must have acknowledged the
            // final chunks before our buffers may be reused.
            if !children.is_empty() {
                let last_seq = base + n_chunks as u32;
                spanned(c, Span::of(Phase::Drain), |c| {
                    for (slot, &child) in children.iter().enumerate() {
                        let line = self.done.line(slot);
                        let notify_line = self.notify.first_line;
                        wait_ge_or_recover(c, &policy, &mut stats, line, last_seq, |c, stats| {
                            let got = probe_remote_flag(c, stats, child, consumed_line, scratch)?;
                            if got >= last_seq {
                                return Ok(true);
                            }
                            stats.renotifies += 1;
                            c.flag_put(MpbAddr::new(child, notify_line), FlagValue(my_avail))?;
                            Ok(false)
                        })?;
                    }
                    Ok(())
                })?;
            }
            Ok(())
        });
        if let Some(r) = self.rel.as_mut() {
            r.stats.accumulate(stats);
        }
        res
    }

    /// Reliable variant of [`OcBcast::wait_children_done`]: a done
    /// wait that times out probes the child's consumed mirror; while
    /// the child lags, its notification is re-sent with our avail
    /// high-water mark (it may never have heard of the chunks it must
    /// consume).
    #[allow(clippy::too_many_arguments)]
    fn wait_children_done_rel<R: Rma>(
        &self,
        c: &mut R,
        children: &[CoreId],
        base: u32,
        seq: u32,
        chunk: usize,
        policy: &Reliability,
        stats: &mut RelStats,
        consumed_line: usize,
        scratch: usize,
        my_avail: u32,
    ) -> RmaResult<()> {
        if children.is_empty() {
            return Ok(());
        }
        let lag = if self.cfg.double_buffer { 2 } else { 1 };
        if chunk < lag {
            return Ok(());
        }
        let required = seq - lag as u32;
        debug_assert!(required > base);
        let notify_line = self.notify.first_line;
        for (slot, &child) in children.iter().enumerate() {
            wait_ge_or_recover(c, policy, stats, self.done.line(slot), required, |c, stats| {
                let got = probe_remote_flag(c, stats, child, consumed_line, scratch)?;
                if got >= required {
                    return Ok(true);
                }
                stats.renotifies += 1;
                c.flag_put(MpbAddr::new(child, notify_line), FlagValue(my_avail))?;
                Ok(false)
            })?;
        }
        Ok(())
    }

    /// Total chunks a message of `bytes` occupies with this config.
    pub fn chunks_for(&self, bytes: usize) -> usize {
        bytes_to_lines(bytes).div_ceil(self.cfg.chunk_lines).max(1)
    }

    fn buf_for(&self, chunk: usize) -> MpbRegion {
        if self.cfg.double_buffer {
            self.bufs[chunk % 2]
        } else {
            self.bufs[0]
        }
    }

    /// Buffer-reuse gate: before writing `chunk` (sequence `seq`), wait
    /// until every child has acknowledged the chunk that previously
    /// occupied the same buffer (`seq - 2` with double buffering,
    /// `seq - 1` without). Skipped for the first occupancy of each
    /// buffer — stale done flags from earlier broadcasts are all
    /// `<= base`, so they can never satisfy the gate spuriously.
    fn wait_children_done<R: Rma>(
        &self,
        c: &mut R,
        children: &[CoreId],
        base: u32,
        seq: u32,
        chunk: usize,
    ) -> RmaResult<()> {
        if children.is_empty() {
            return Ok(());
        }
        let lag = if self.cfg.double_buffer { 2 } else { 1 };
        if chunk < lag {
            return Ok(());
        }
        let required = seq - lag as u32;
        debug_assert!(required > base);
        for slot in 0..children.len() {
            c.flag_wait_local(self.done.line(slot), &mut |v| v.0 >= required)?;
        }
        Ok(())
    }

    /// Send the notification for `seq` to our successors in `group`'s
    /// notification tree (no-ops for leaves of the notification tree).
    fn notify_forward<R: Rma>(
        &self,
        c: &mut R,
        group: Option<&NotifyGroup>,
        me: CoreId,
        epoch: u32,
        first_line: u32,
        seq: u32,
    ) -> RmaResult<()> {
        let Some(group) = group else { return Ok(()) };
        for target in group.forwards(me) {
            tagged(c, MsgId::new(epoch, me, target, first_line), |c| {
                c.flag_put(MpbAddr::new(target, self.notify.first_line), FlagValue(seq))
            })?;
        }
        Ok(())
    }

    fn signal_done<R: Rma>(
        &self,
        c: &mut R,
        parent: CoreId,
        slot: Option<usize>,
        epoch: u32,
        first_line: u32,
        seq: u32,
    ) -> RmaResult<()> {
        let slot = slot.expect("non-root has a done slot");
        tagged(c, MsgId::new(epoch, c.core(), parent, first_line), |c| {
            c.flag_put(MpbAddr::new(parent, self.done.line(slot)), FlagValue(seq))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 20, ..SimConfig::default() }
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(97).wrapping_add(seed)).collect()
    }

    /// Run one broadcast on the simulator and assert every core ends up
    /// with the message.
    fn check_bcast(p: usize, oc: OcConfig, root: u8, len: usize) {
        let msg = pattern(len, root);
        let expect = msg.clone();
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let mut bc = OcBcast::new(&mut alloc, oc).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core() == CoreId(root) {
                c.mem_write(0, &msg)?;
            }
            bc.bcast(c, CoreId(root), r)?;
            c.mem_to_vec(r)
        })
        .unwrap_or_else(|e| panic!("p={p} k={} len={len}: {e}", oc.k));
        for (i, r) in rep.results.iter().enumerate() {
            let got = r.as_ref().unwrap();
            assert_eq!(got, &expect, "core {i} (p={p}, k={}, len={len})", oc.k);
        }
    }

    #[test]
    fn single_cache_line_message() {
        check_bcast(12, OcConfig::default(), 0, 32);
    }

    #[test]
    fn sub_line_message() {
        check_bcast(8, OcConfig::default(), 0, 5);
    }

    #[test]
    fn one_chunk_exact() {
        check_bcast(12, OcConfig::default(), 0, 96 * 32);
    }

    #[test]
    fn the_97_cache_line_case() {
        // Section 6.2.2: a 97-line message splits into a 96-line chunk
        // and a 1-line chunk — the throughput-dip case.
        check_bcast(12, OcConfig::default(), 0, 97 * 32);
    }

    #[test]
    fn multi_chunk_pipelined() {
        check_bcast(12, OcConfig::default(), 0, 5 * 96 * 32 + 13);
    }

    #[test]
    fn all_48_cores() {
        check_bcast(48, OcConfig::default(), 0, 4000);
    }

    #[test]
    fn various_k() {
        for k in [1usize, 2, 3, 7, 24, 47] {
            check_bcast(48, OcConfig::with_k(k), 0, 3 * 96 * 32 + 5);
        }
    }

    #[test]
    fn non_zero_root() {
        check_bcast(12, OcConfig::default(), 5, 1000);
        check_bcast(48, OcConfig::with_k(7), 47, 10_000);
    }

    #[test]
    fn two_cores() {
        check_bcast(2, OcConfig::default(), 1, 500);
    }

    #[test]
    fn single_core_is_noop() {
        check_bcast(1, OcConfig::default(), 0, 128);
    }

    #[test]
    fn without_double_buffer() {
        let c = OcConfig { double_buffer: false, ..OcConfig::default() };
        check_bcast(12, c, 0, 4 * 96 * 32);
    }

    #[test]
    fn leaf_direct_optimization() {
        let c = OcConfig { leaf_direct: true, ..OcConfig::default() };
        check_bcast(12, c, 0, 3 * 96 * 32 + 100);
        check_bcast(48, OcConfig { leaf_direct: true, ..OcConfig::with_k(47) }, 3, 2000);
    }

    #[test]
    fn sequential_notification_fanout() {
        let c = OcConfig { notify_fanout: 64, ..OcConfig::default() };
        check_bcast(24, c, 0, 2000);
    }

    #[test]
    fn tiny_chunks_stress_pipeline() {
        let c = OcConfig { chunk_lines: 2, ..OcConfig::default() };
        check_bcast(8, c, 0, 700);
    }

    #[test]
    fn back_to_back_broadcasts_different_roots_no_barrier() {
        let p = 12;
        let rounds = 6u8;
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<Vec<u8>>> {
            let mut alloc = MpbAllocator::new();
            let mut bc = OcBcast::new(&mut alloc, OcConfig::default()).unwrap();
            let mut got = Vec::new();
            for round in 0..rounds {
                let root = CoreId((round as usize % p) as u8);
                let len = 500 + 177 * round as usize;
                let r = MemRange::new(0, len);
                if c.core() == root {
                    c.mem_write(0, &pattern(len, round))?;
                }
                bc.bcast(c, root, r)?;
                got.push(c.mem_to_vec(r)?);
            }
            Ok(got)
        })
        .unwrap();
        for (i, r) in rep.results.iter().enumerate() {
            let got = r.as_ref().unwrap();
            for (round, g) in got.iter().enumerate() {
                let len = 500 + 177 * round;
                assert_eq!(g, &pattern(len, round as u8), "core {i} round {round}");
            }
        }
    }

    #[test]
    fn zero_length_is_noop() {
        let rep = run_spmd(&cfg(4), |c| -> RmaResult<scc_hal::Time> {
            let mut alloc = MpbAllocator::new();
            let mut bc = OcBcast::new(&mut alloc, OcConfig::default()).unwrap();
            bc.bcast(c, CoreId(0), MemRange::new(0, 0))?;
            Ok(c.now())
        })
        .unwrap();
        for r in rep.results {
            assert_eq!(r.unwrap(), scc_hal::Time::ZERO);
        }
    }

    /// Run one *reliable* broadcast under the given fault plan and
    /// assert every core ends up with the message (ack-verified by
    /// protocol, byte-verified here).
    fn check_bcast_reliable(
        sim: &SimConfig,
        oc: OcConfig,
        root: u8,
        len: usize,
    ) -> crate::reliable::RelStats {
        use crate::reliable::{RelStats, Reliability};
        let p = sim.num_cores;
        let msg = pattern(len, root);
        let expect = msg.clone();
        let rep = run_spmd(sim, move |c| -> RmaResult<(Vec<u8>, RelStats)> {
            let mut alloc = MpbAllocator::new();
            let mut bc = OcBcast::new_reliable(&mut alloc, oc, Reliability::standard()).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core() == CoreId(root) {
                c.mem_write(0, &msg)?;
            }
            bc.bcast_reliable(c, CoreId(root), r)?;
            Ok((c.mem_to_vec(r)?, bc.rel_stats().unwrap()))
        })
        .unwrap_or_else(|e| panic!("reliable p={p} k={} len={len}: {e}", oc.k));
        let mut total = RelStats::default();
        for (i, r) in rep.results.iter().enumerate() {
            let (got, stats) = r.as_ref().unwrap();
            assert_eq!(got, &expect, "core {i} (p={p}, k={}, len={len})", oc.k);
            total.accumulate(*stats);
        }
        total
    }

    #[test]
    fn reliable_failure_free_matches_plain_delivery() {
        check_bcast_reliable(&cfg(12), OcConfig::default(), 0, 3 * 96 * 32 + 5);
        check_bcast_reliable(&cfg(48), OcConfig::with_k(47), 3, 2000);
    }

    #[test]
    fn reliable_survives_lost_notifications() {
        use scc_sim::FaultPlan;
        for k in [7usize, 47] {
            let sim = SimConfig {
                faults: FaultPlan { drop_notification_ppm: 50_000, ..FaultPlan::default() },
                ..cfg(48)
            };
            let stats = check_bcast_reliable(&sim, OcConfig::with_k(k), 0, 4 * 96 * 32);
            assert!(stats.recoveries > 0, "k={k}: fault run must exercise recovery: {stats:?}");
        }
    }

    #[test]
    fn reliable_survives_delays_and_slow_cores() {
        use scc_hal::Time;
        use scc_sim::{FaultPlan, SlowWindow};
        let sim = SimConfig {
            faults: FaultPlan {
                drop_notification_ppm: 20_000,
                delay_ppm: 80_000,
                delay: Time::from_us_f64(30.0),
                slow: vec![SlowWindow {
                    core: CoreId(1),
                    from: Time::ZERO,
                    until: Time::from_us_f64(50_000.0),
                    extra: Time::from_us_f64(4.0),
                }],
                ..FaultPlan::default()
            },
            ..cfg(24)
        };
        check_bcast_reliable(&sim, OcConfig::default(), 0, 5 * 96 * 32 + 13);
    }

    /// A reliable context with a *disabled* policy must produce the
    /// exact same broadcast as a plain context: same delivered bytes,
    /// same virtual makespan.
    #[test]
    fn disabled_policy_is_byte_identical_to_plain() {
        use crate::reliable::Reliability;
        let len = 2 * 96 * 32 + 9;
        let run = |reliable: bool| {
            let rep = run_spmd(&cfg(12), move |c| -> RmaResult<()> {
                let mut alloc = MpbAllocator::new();
                let r = MemRange::new(0, len);
                if c.core().index() == 0 {
                    c.mem_write(0, &pattern(len, 2))?;
                }
                if reliable {
                    let mut bc = OcBcast::new_reliable(
                        &mut alloc,
                        OcConfig::default(),
                        Reliability::default(),
                    )
                    .unwrap();
                    bc.bcast_reliable(c, CoreId(0), r)
                } else {
                    let mut bc = OcBcast::new(&mut alloc, OcConfig::default()).unwrap();
                    bc.bcast(c, CoreId(0), r)
                }
            })
            .unwrap();
            rep.makespan
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn context_too_large_fails_cleanly() {
        let mut alloc = MpbAllocator::new();
        // k = 64 with 96-line double buffers: 1 + 64 + 192 = 257 > 256.
        let e = OcBcast::new(&mut alloc, OcConfig { k: 64, ..OcConfig::default() });
        assert!(e.is_err());
    }

    /// Section 4.2 argues double buffering halves the ping-pong time of
    /// a producer/consumer pair. In the full algorithm the effect turns
    /// out to depend on *when* the done flag is set: with the paper's
    /// step order (done after the MPB copy, *before* the slow off-chip
    /// copy) the parent's buffer is released early and a single buffer
    /// pipelines almost as well. When consumption is monolithic — the
    /// `leaf_direct` variant, where leaves copy parent MPB → memory in
    /// one op and can only signal done afterwards — the ping-pong
    /// penalty the paper describes appears in full. Both behaviours are
    /// asserted here and reported in EXPERIMENTS.md.
    #[test]
    fn double_buffering_effect_depends_on_done_signalling() {
        let len = 20 * 96 * 32;
        let run = |double_buffer: bool, leaf_direct: bool| {
            let rep = run_spmd(&cfg(8), move |c| -> RmaResult<()> {
                let mut alloc = MpbAllocator::new();
                let mut bc = OcBcast::new(
                    &mut alloc,
                    OcConfig { double_buffer, leaf_direct, ..OcConfig::default() },
                )
                .unwrap();
                let r = MemRange::new(0, len);
                if c.core().index() == 0 {
                    c.mem_write(0, &pattern(len, 1))?;
                }
                bc.bcast(c, CoreId(0), r)
            })
            .unwrap();
            rep.makespan
        };
        // Early-release done flags: single buffer within 5% of double.
        let double = run(true, false);
        let single = run(false, false);
        // (Sub-permille scheduling noise from flag-event ordering can
        // nudge either way; anything beyond that would be a bug.)
        assert!(
            double.as_ns_f64() <= single.as_ns_f64() * 1.001,
            "double buffering can never lose: {double} vs {single}"
        );
        assert!(
            single.as_ns_f64() < 1.05 * double.as_ns_f64(),
            "early done-release should make single-buffer competitive: {double} vs {single}"
        );
        // Monolithic consumption: double buffering wins big.
        let double_ld = run(true, true);
        let single_ld = run(false, true);
        assert!(
            double_ld.as_ns_f64() < 0.75 * single_ld.as_ns_f64(),
            "with leaf_direct the ping-pong penalty must appear: {double_ld} vs {single_ld}"
        );
    }
}
