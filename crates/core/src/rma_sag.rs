//! One-sided scatter-allgather broadcast — the alternative design the
//! paper sketches in Section 5.4: "a good example of another possible
//! broadcast implementation is adapting the two-sided scatter-allgather
//! algorithm to use the one-sided primitives available on the SCC."
//!
//! Same communication structure as the RCCE_comm baseline (binomial
//! scatter of `P` slices, then `P − 1` ring rounds), but each hop is a
//! direct RMA pipeline instead of a rendezvous send/receive:
//!
//! * the producer `put`s chunks straight into the consumer's MPB
//!   buffers (two halves, double-buffered) and raises a sequence-valued
//!   notify flag per half;
//! * the consumer `get`s each chunk to off-chip memory and raises the
//!   producer's done flag;
//! * no ready/sent handshake, no waiting for the partner to arrive —
//!   the flag discipline alone paces the pipeline, so the producer's
//!   `put` of chunk `i+1` overlaps the consumer's `get` of chunk `i`.
//!
//! Protocol soundness notes (the subtle parts):
//!
//! * **Scatter** pairs change from step to step, so a sender fully
//!   drains each transfer (waits for the final done flags) before
//!   starting the next one — otherwise a slow previous receiver's late
//!   done write could clobber the current receiver's and wedge the
//!   sender. The scatter tree has no cycles, so draining cannot
//!   deadlock.
//! * **Allgather** pairs are fixed (always send to the left
//!   neighbour), so done lines have a single writer each and sequence
//!   accounting per buffer half is exact; rounds pipeline through the
//!   two halves with no drain, and the two-chunk slack is what breaks
//!   the ring's circular wait.
//! * A trailing dissemination barrier separates consecutive
//!   collectives: the first puts of a new collective have no
//!   buffer-occupancy information about forsaken pairs from the
//!   previous one. Its ~6 flag rounds are noise against the large
//!   messages this algorithm targets.

use crate::scatter_allgather::slice_range;
use scc_hal::{
    bytes_to_lines, delivering, spanned, tagged, CoreId, FlagValue, MemRange, MpbAddr, MsgId,
    Phase, Rma, RmaResult, Span, CACHE_LINE_BYTES,
};
use scc_rcce::{Barrier, MpbAllocator, MpbExhausted, MpbRegion};

/// One-sided scatter-allgather context (symmetric allocation).
#[derive(Clone, Debug)]
pub struct RmaSag {
    /// Per-half "chunk available" flags in this core's MPB.
    notify: MpbRegion,
    /// Per-half "chunk consumed" flags in this core's MPB.
    done: MpbRegion,
    /// Two payload halves.
    bufs: [MpbRegion; 2],
    barrier: Barrier,
    seq: u32,
    /// Invocation counter for journey annotations (see [`MsgId`]).
    epoch: u32,
}

impl RmaSag {
    /// Reserve two `half_lines` buffers plus four flag lines and the
    /// trailing barrier's lines. 96-line halves mirror OC-Bcast's
    /// chunking.
    pub fn new(
        alloc: &mut MpbAllocator,
        num_cores: usize,
        half_lines: usize,
    ) -> Result<RmaSag, MpbExhausted> {
        assert!(half_lines >= 1);
        let notify = alloc.alloc(2)?;
        let done = alloc.alloc(2)?;
        let b0 = alloc.alloc(half_lines)?;
        let b1 = alloc.alloc(half_lines)?;
        let barrier = Barrier::new(alloc, num_cores)?;
        Ok(RmaSag { notify, done, bufs: [b0, b1], barrier, seq: 0, epoch: 0 })
    }

    /// Default configuration: 96-line halves.
    pub fn with_defaults(
        alloc: &mut MpbAllocator,
        num_cores: usize,
    ) -> Result<RmaSag, MpbExhausted> {
        Self::new(alloc, num_cores, 96)
    }

    pub fn release(self, alloc: &mut MpbAllocator) {
        alloc.free(self.notify);
        alloc.free(self.done);
        alloc.free(self.bufs[0]);
        alloc.free(self.bufs[1]);
        self.barrier.release(alloc);
    }

    fn chunk_bytes(&self) -> usize {
        self.bufs[0].lines * CACHE_LINE_BYTES
    }

    fn chunks_of(&self, bytes: usize) -> usize {
        bytes_to_lines(bytes).div_ceil(self.bufs[0].lines).max(1)
    }

    /// Producer side of one pipelined transfer: put `src` into `dst`'s
    /// halves chunk by chunk. `drain` waits for the final done flags
    /// (required when the next transfer goes to a different core).
    /// `first_line` is the offset of `src` within the whole message in
    /// cache lines (journey tags name absolute message lines).
    #[allow(clippy::too_many_arguments)]
    fn push<R: Rma>(
        &self,
        c: &mut R,
        dst: CoreId,
        src: MemRange,
        seq_base: u32,
        drain: bool,
        last_half_seq: &mut [u32; 2],
        epoch: u32,
        first_line: u32,
    ) -> RmaResult<()> {
        let n = self.chunks_of(src.len);
        let chunk_bytes = self.chunk_bytes();
        let me = c.core();
        let mut off = 0usize;
        for i in 0..n {
            let seq = seq_base + i as u32 + 1;
            let h = i % 2;
            if last_half_seq[h] > 0 {
                c.flag_wait_local(self.done.line(h), &mut |v| v.0 >= last_half_seq[h])?;
            }
            let len = (src.len - off).min(chunk_bytes);
            let msg = MsgId::new(epoch, me, dst, first_line + (off / CACHE_LINE_BYTES) as u32);
            tagged(c, msg, |c| {
                if len > 0 {
                    c.put_from_mem_cached(
                        src.slice(off, len),
                        MpbAddr::new(dst, self.bufs[h].first_line),
                    )?;
                }
                c.flag_put(MpbAddr::new(dst, self.notify.line(h)), FlagValue(seq))
            })?;
            last_half_seq[h] = seq;
            off += len;
        }
        if drain {
            for (h, seq) in last_half_seq.iter_mut().enumerate() {
                if *seq > 0 {
                    let expect = *seq;
                    c.flag_wait_local(self.done.line(h), &mut |v| v.0 >= expect)?;
                }
                *seq = 0;
            }
        }
        Ok(())
    }

    /// Consumer side: receive a pipelined transfer from `src_core`.
    /// `first_line` mirrors [`RmaSag::push`].
    fn pull<R: Rma>(
        &self,
        c: &mut R,
        src_core: CoreId,
        dst: MemRange,
        seq_base: u32,
        epoch: u32,
        first_line: u32,
    ) -> RmaResult<()> {
        let n = self.chunks_of(dst.len);
        let chunk_bytes = self.chunk_bytes();
        let me = c.core();
        let mut off = 0usize;
        for i in 0..n {
            let seq = seq_base + i as u32 + 1;
            let h = i % 2;
            c.flag_wait_local(self.notify.line(h), &mut |v| v.0 >= seq)?;
            let len = (dst.len - off).min(chunk_bytes);
            let line = first_line + (off / CACHE_LINE_BYTES) as u32;
            if len > 0 {
                tagged(c, MsgId::new(epoch, src_core, me, line), |c| {
                    c.get_to_mem(MpbAddr::new(me, self.bufs[h].first_line), dst.slice(off, len))
                })?;
            }
            tagged(c, MsgId::new(epoch, me, src_core, line), |c| {
                c.flag_put(MpbAddr::new(src_core, self.done.line(h)), FlagValue(seq))
            })?;
            off += len;
        }
        Ok(())
    }

    /// Collective broadcast with the one-sided scatter-allgather
    /// structure. All cores call with identical `root` and `msg`.
    pub fn bcast<R: Rma>(&mut self, c: &mut R, root: CoreId, msg: MemRange) -> RmaResult<()> {
        let p = c.num_cores();
        if msg.len == 0 || p <= 1 {
            return Ok(());
        }
        let me = c.core();
        let rr = (me.index() + p - root.index()) % p;
        let abs = |rel: usize| CoreId(((root.index() + rel) % p) as u8);
        let slices = |lo: usize, hi: usize| -> MemRange {
            let first = slice_range(msg, p, lo);
            let last = slice_range(msg, p, hi - 1);
            msg.slice(first.offset - msg.offset, last.end() - first.offset)
        };
        // First cache line of a fragment within the whole message.
        let first_line = |r: MemRange| ((r.offset - msg.offset) / CACHE_LINE_BYTES) as u32;
        let epoch = self.epoch;
        self.epoch += 1;

        // Deterministic sequence budget: scatter steps are numbered by
        // halving depth, allgather rounds after them; every transfer
        // gets a disjoint, globally agreed seq range.
        let max_group_chunks = self.chunks_of(msg.len) as u32 + 1;
        let scatter_steps = (p as f64).log2().ceil() as u32;
        let base = self.seq;
        let ag_base = base + scatter_steps * max_group_chunks;
        let slice_chunks = self.chunks_of(slice_range(msg, p, 0).len.max(1)) as u32;
        self.seq = ag_base + (p as u32 - 1) * slice_chunks;

        // ---- one-sided scatter (recursive halving) --------------------
        delivering(c, epoch, |c| {
            spanned(c, Span::of(Phase::Scatter), |c| {
                let mut lo = 0usize;
                let mut hi = p;
                let mut step = 0u32;
                let mut last_half_seq = [0u32; 2];
                while hi - lo > 1 {
                    let mid = lo + (hi - lo).div_ceil(2);
                    let group = slices(mid, hi);
                    let seq_base = base + step * max_group_chunks;
                    if group.len > 0 {
                        if rr == lo {
                            // Changing receiver next step: drain.
                            self.push(
                                c,
                                abs(mid),
                                group,
                                seq_base,
                                true,
                                &mut last_half_seq,
                                epoch,
                                first_line(group),
                            )?;
                        } else if rr == mid {
                            self.pull(c, abs(lo), group, seq_base, epoch, first_line(group))?;
                        }
                    }
                    if rr < mid {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                    step += 1;
                }
                Ok(())
            })?;

            // Phase boundary. One-sided writes are unsolicited: a core that
            // finished its (short) scatter role would otherwise start
            // pushing allgather chunks into a neighbour still waiting for
            // its scatter reception, clobbering the shared buffer halves.
            // The two-sided baseline is immune because its rendezvous
            // matching orders the phases per pair; here a barrier does it.
            spanned(c, Span::new(Phase::Barrier, 0), |c| self.barrier.wait(c))?;

            // ---- one-sided ring allgather ---------------------------------
            let left = abs((rr + p - 1) % p);
            let right = abs((rr + 1) % p);
            spanned(c, Span::of(Phase::Allgather), |c| {
                let mut half_seq = [0u32; 2];
                for r in 0..p - 1 {
                    let out = slice_range(msg, p, (rr + r) % p);
                    let inc = slice_range(msg, p, (rr + r + 1) % p);
                    let seq_base = ag_base + r as u32 * slice_chunks;
                    spanned(c, Span::new(Phase::Round, r as u32), |c| {
                        if out.len > 0 {
                            self.push(
                                c,
                                left,
                                out,
                                seq_base,
                                false,
                                &mut half_seq,
                                epoch,
                                first_line(out),
                            )?;
                        }
                        if inc.len > 0 {
                            self.pull(c, right, inc, seq_base, epoch, first_line(inc))?;
                        }
                        Ok(())
                    })?;
                }
                Ok(())
            })?;

            // Collective boundary: nobody may reuse buffers/flags until
            // every core has consumed its final chunks.
            spanned(c, Span::new(Phase::Barrier, 1), |c| self.barrier.wait(c))?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 21, ..SimConfig::default() }
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(17).wrapping_add(seed)).collect()
    }

    fn check(p: usize, root: u8, len: usize) {
        let msg = pattern(len, root);
        let expect = msg.clone();
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let mut sag = RmaSag::with_defaults(&mut alloc, c.num_cores()).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core() == CoreId(root) {
                c.mem_write(0, &msg)?;
            }
            sag.bcast(c, CoreId(root), r)?;
            c.mem_to_vec(r)
        })
        .unwrap_or_else(|e| panic!("p={p} root={root} len={len}: {e}"));
        for (i, r) in rep.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect, "core {i} (p={p}, len={len})");
        }
    }

    #[test]
    fn small_and_medium() {
        check(4, 0, 333);
        check(8, 0, 4 * 96 * 32);
        check(12, 3, 7000);
    }

    #[test]
    fn full_chip_throughput_message() {
        check(48, 0, 48 * 96 * 32);
    }

    #[test]
    fn odd_core_counts_and_short_messages() {
        check(3, 0, 100);
        check(7, 2, 5000);
        check(47, 1, 47 * 32);
        check(48, 0, 100); // empty slices
    }

    #[test]
    fn repeated_collectives() {
        let rep = run_spmd(&cfg(8), |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mut sag = RmaSag::with_defaults(&mut alloc, 8).unwrap();
            let mut ok = true;
            for round in 0..4u8 {
                let len = 1000 + round as usize * 3777;
                let msg = pattern(len, round);
                let root = CoreId(round % 8);
                let r = MemRange::new(0, len);
                if c.core() == root {
                    c.mem_write(0, &msg)?;
                }
                sag.bcast(c, root, r)?;
                ok &= c.mem_to_vec(r)? == msg;
            }
            Ok(ok)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }

    /// The Section 5.4 claim this extension exists to check: going
    /// one-sided roughly doubles scatter-allgather throughput, but
    /// OC-Bcast still wins — RMA alone is not enough, the algorithm
    /// shape (no per-hop off-chip round trips on the critical path)
    /// is what buys the rest.
    #[test]
    fn one_sided_beats_two_sided_but_loses_to_oc() {
        use crate::bcast::{Algorithm, Broadcaster};
        let bytes = 24 * 96 * 32;
        let time = |which: u8| -> f64 {
            let rep = run_spmd(&cfg(24), move |c| -> RmaResult<()> {
                let mut alloc = MpbAllocator::new();
                let r = MemRange::new(0, bytes);
                if c.core().index() == 0 {
                    c.mem_write(0, &pattern(bytes, 1))?;
                }
                match which {
                    0 => {
                        let mut sag = RmaSag::with_defaults(&mut alloc, 24).unwrap();
                        sag.bcast(c, CoreId(0), r)
                    }
                    1 => {
                        let mut b =
                            Broadcaster::new(&mut alloc, Algorithm::ScatterAllgather, 24).unwrap();
                        b.bcast(c, CoreId(0), r)
                    }
                    _ => {
                        let mut b =
                            Broadcaster::new(&mut alloc, Algorithm::oc_default(), 24).unwrap();
                        b.bcast(c, CoreId(0), r)
                    }
                }
            })
            .unwrap();
            rep.makespan.as_us_f64()
        };
        let one_sided = time(0);
        let two_sided = time(1);
        let oc = time(2);
        assert!(
            one_sided < 0.75 * two_sided,
            "one-sided s-ag must clearly beat two-sided: {one_sided:.0} vs {two_sided:.0} µs"
        );
        assert!(oc < one_sided, "OC-Bcast must still win: {oc:.0} vs {one_sided:.0} µs");
    }
}
