//! Criterion benches of the three broadcast algorithms on the
//! real-thread backend (`scc-rt`).
//!
//! These measure actual wall-clock behaviour of the same algorithm
//! code that runs on the simulator. Note the caveats: the thread
//! backend has no NoC, its MPBs are ordinary shared memory, and on a
//! host with fewer hardware threads than cores the spin-yield waits
//! dominate — so compare *algorithms*, not absolute numbers, and see
//! fig8a/fig8b for the SCC-faithful measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, MemRange, Rma, RmaResult};
use scc_rcce::{Barrier, MpbAllocator};
use scc_rt::{run_spmd, RtConfig};
use std::hint::black_box;

/// One full SPMD run doing `reps` broadcasts of `bytes` bytes.
fn run_broadcasts(p: usize, alg: Algorithm, bytes: usize, reps: usize) {
    let cfg = RtConfig { num_cores: p, mem_bytes: bytes.max(4096).next_power_of_two() * 2 };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut bar = Barrier::new(&mut alloc, c.num_cores()).expect("barrier");
        let mut b = Broadcaster::new(&mut alloc, alg, c.num_cores()).expect("bcast");
        let r = MemRange::new(0, bytes);
        if c.core().index() == 0 {
            c.mem_write(0, &vec![0xA5u8; bytes])?;
        }
        for _ in 0..reps {
            bar.wait(c)?;
            b.bcast(c, CoreId(0), r)?;
        }
        Ok(())
    })
    .expect("rt run");
    for r in rep.results {
        r.expect("core");
    }
}

fn bench_broadcast(c: &mut Criterion) {
    // Keep the core count modest: hosts running this suite may have a
    // single hardware thread (spin waits always yield).
    let p = 4;
    let algs = [
        Algorithm::oc_default(),
        Algorithm::oc_with_k(2),
        Algorithm::Binomial,
        Algorithm::ScatterAllgather,
    ];

    let mut g = c.benchmark_group("rt_bcast_small");
    g.sample_size(10);
    for alg in algs {
        g.bench_with_input(BenchmarkId::from_parameter(alg.label()), &alg, |b, &alg| {
            b.iter(|| run_broadcasts(black_box(p), alg, 64, 8));
        });
    }
    g.finish();

    let bytes = 96 * 32 * 4;
    let mut g = c.benchmark_group("rt_bcast_large");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes as u64 * 4));
    for alg in algs {
        g.bench_with_input(BenchmarkId::from_parameter(alg.label()), &alg, |b, &alg| {
            b.iter(|| run_broadcasts(black_box(p), alg, bytes, 4));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
