//! Criterion benches of the discrete-event engine itself: how fast the
//! simulator retires events and complete broadcasts. Useful when
//! tuning the engine (event queue, calendar reservations, channel
//! rendezvous) — not a statement about the SCC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, MemRange, MpbAddr, Rma, RmaResult};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    // Raw op throughput: a single core hammering 1-line puts.
    let mut g = c.benchmark_group("sim_ops");
    g.sample_size(10);
    for ops in [1_000usize, 10_000] {
        g.throughput(Throughput::Elements(ops as u64));
        g.bench_with_input(BenchmarkId::new("one_line_puts", ops), &ops, |b, &ops| {
            let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
            b.iter(|| {
                run_spmd(&cfg, move |core| -> RmaResult<()> {
                    if core.core().index() == 0 {
                        for _ in 0..ops {
                            core.put_from_mpb(0, MpbAddr::new(CoreId(1), 0), 1)?;
                        }
                    }
                    Ok(())
                })
                .expect("sim")
            });
        });
    }
    g.finish();

    // End-to-end: one 48-core OC-Bcast of one chunk.
    let mut g = c.benchmark_group("sim_bcast");
    g.sample_size(10);
    for &(label, bytes) in &[("1CL", 32usize), ("96CL", 96 * 32)] {
        g.bench_with_input(BenchmarkId::new("oc_k7_p48", label), &bytes, |b, &bytes| {
            let cfg = SimConfig { num_cores: 48, mem_bytes: 1 << 16, ..SimConfig::default() };
            // Setup stays outside the measured closure: the payload is
            // allocated once here, not per iteration inside the
            // virtual-time run.
            let payload = vec![1u8; bytes];
            let payload = payload.as_slice();
            b.iter(|| {
                run_spmd(&cfg, move |core| -> RmaResult<()> {
                    let mut alloc = MpbAllocator::new();
                    let mut bc =
                        Broadcaster::new(&mut alloc, Algorithm::oc_default(), 48).expect("ctx");
                    let r = MemRange::new(0, black_box(bytes));
                    if core.core().index() == 0 {
                        core.mem_write(0, payload)?;
                    }
                    bc.bcast(core, CoreId(0), r)
                })
                .expect("sim")
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
