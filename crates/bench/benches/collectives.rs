//! Criterion benches for the extension collectives (reduce, allreduce,
//! barrier) on the real-thread backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oc_bcast::collectives::{oc_allreduce, OcReduce, ReduceOp};
use oc_bcast::{OcBcast, OcConfig};
use scc_hal::{CoreId, MemRange, Rma, RmaResult};
use scc_rcce::MpbAllocator;
use scc_rt::{run_spmd, RtConfig};
use std::hint::black_box;

fn run_reduce(p: usize, elems: usize, reps: usize, all: bool) {
    let bytes = elems * 8;
    let cfg = RtConfig { num_cores: p, mem_bytes: (bytes * 2).max(4096) };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut red = OcReduce::with_slot_lines(&mut alloc, 3, 8).expect("reduce");
        let mut bc = OcBcast::new(&mut alloc, OcConfig { chunk_lines: 48, ..OcConfig::default() })
            .expect("bcast");
        let me = c.core().index() as u64;
        let v: Vec<u8> = (0..elems as u64).flat_map(|i| (i + me).to_le_bytes()).collect();
        let r = MemRange::new(0, bytes);
        for _ in 0..reps {
            c.mem_write(0, &v)?;
            if all {
                oc_allreduce(c, &mut red, &mut bc, CoreId(0), r, ReduceOp::Sum)?;
            } else {
                red.reduce(c, CoreId(0), r, ReduceOp::Sum)?;
            }
        }
        Ok(())
    })
    .expect("rt run");
    for r in rep.results {
        r.expect("core");
    }
}

fn bench_collectives(c: &mut Criterion) {
    let p = 4;
    let mut g = c.benchmark_group("rt_reduce");
    g.sample_size(10);
    for elems in [64usize, 1024] {
        g.bench_with_input(BenchmarkId::new("reduce_sum", elems), &elems, |b, &e| {
            b.iter(|| run_reduce(black_box(p), e, 4, false));
        });
        g.bench_with_input(BenchmarkId::new("allreduce_sum", elems), &elems, |b, &e| {
            b.iter(|| run_reduce(black_box(p), e, 4, true));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("rt_barrier");
    g.sample_size(10);
    for which in ["dissemination", "tree"] {
        g.bench_with_input(BenchmarkId::from_parameter(which), &which, |b, &w| {
            b.iter(|| {
                let cfg = RtConfig { num_cores: p, mem_bytes: 4096 };
                let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
                    let mut alloc = MpbAllocator::new();
                    if w == "dissemination" {
                        let mut bar = scc_rcce::Barrier::new(&mut alloc, p).expect("bar");
                        for _ in 0..20 {
                            bar.wait(c)?;
                        }
                    } else {
                        let mut red = OcReduce::with_slot_lines(&mut alloc, 3, 1).expect("red");
                        for _ in 0..20 {
                            red.barrier(c, CoreId(0))?;
                        }
                    }
                    Ok(())
                })
                .expect("rt");
                for r in rep.results {
                    r.expect("core");
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
