//! End-to-end conformance pipeline: run real registry experiments,
//! serialize the report, and prove the drift gate (a) accepts an
//! unperturbed re-run and (b) rejects deliberate perturbations —
//! out-of-band rows, flipped shapes, vanished experiments.

use scc_bench::{registry, run_experiment};
use scc_obs::report::validate_json;
use scc_obs::{drift_gate, ConformanceReport};

/// Run a cheap subset of the registry (the pure-model and tree
/// experiments — no 48-core sweeps) in quick mode.
fn small_report() -> ConformanceReport {
    let mut report = ConformanceReport::new(true);
    for exp in registry() {
        if ["fig5", "fig6", "table2", "linkstress"].contains(&exp.id) {
            let (r, text) = run_experiment(&exp, true);
            assert!(!text.is_empty(), "{} produced no text", exp.id);
            report.experiments.push(r);
        }
    }
    assert_eq!(report.experiments.len(), 4);
    report
}

#[test]
fn registry_report_round_trips_and_self_compares_clean() {
    let report = small_report();
    assert!(report.shapes_pass(), "registry experiments must pass on a healthy tree");

    let json = report.to_json().render();
    validate_json(&json).expect("emitted JSON must validate");
    let back = ConformanceReport::from_json(&json).expect("emitted JSON must parse");
    assert_eq!(back.experiments.len(), report.experiments.len());

    // The simulator is deterministic: a fresh run gates clean against
    // the round-tripped baseline.
    let fresh = small_report();
    let gate = drift_gate(&fresh, &back);
    assert!(gate.ok(), "unperturbed re-run must pass the gate:\n{}", gate.render());
    assert!(gate.rows_checked > 0 && gate.shapes_checked > 0);
}

#[test]
fn gate_rejects_deliberate_perturbations() {
    let baseline = small_report();
    let json = baseline.to_json().render();
    let baseline = ConformanceReport::from_json(&json).expect("parse");

    // Perturbation 1: one measurement drifts far outside its band.
    let mut drifted = baseline.clone();
    {
        let row = &mut drifted.experiments[1].rows[0];
        row.sim_measured *= 1.0 + 10.0 * row.tolerance.max(0.01);
    }
    let gate = drift_gate(&drifted, &baseline);
    assert!(!gate.ok(), "an out-of-band row must trip the gate");

    // Perturbation 2: a paper shape claim regresses.
    let mut broken = baseline.clone();
    broken.experiments[0].shapes[0].pass = false;
    let gate = drift_gate(&broken, &baseline);
    assert!(!gate.ok(), "a shape regression must trip the gate");
    assert!(gate.render().contains("shape regression"), "{}", gate.render());

    // Perturbation 3: an experiment silently disappears.
    let mut missing = baseline.clone();
    missing.experiments.remove(0);
    let gate = drift_gate(&missing, &baseline);
    assert!(!gate.ok(), "a vanished experiment must trip the gate");

    // Perturbation 4: quick run against a full baseline is refused.
    let mut wrong_mode = baseline.clone();
    wrong_mode.quick = !baseline.quick;
    let gate = drift_gate(&wrong_mode, &baseline);
    assert!(!gate.ok(), "mode mismatch must trip the gate");
}
