//! End-to-end conformance pipeline: run real registry experiments,
//! serialize the report, and prove the drift gate (a) accepts an
//! unperturbed re-run and (b) rejects deliberate perturbations —
//! out-of-band rows, flipped shapes, vanished experiments.

use scc_bench::{registry, run_experiment};
use scc_obs::report::validate_json;
use scc_obs::{drift_gate, validate_artifact_version, ConformanceReport, Json};

/// Run a cheap subset of the registry (the pure-model and tree
/// experiments — no 48-core sweeps) in quick mode.
fn small_report() -> ConformanceReport {
    let mut report = ConformanceReport::new(true);
    for exp in registry() {
        if ["fig5", "fig6", "table2", "linkstress"].contains(&exp.id) {
            let (r, text) = run_experiment(&exp, true);
            assert!(!text.is_empty(), "{} produced no text", exp.id);
            report.experiments.push(r);
        }
    }
    assert_eq!(report.experiments.len(), 4);
    report
}

#[test]
fn registry_report_round_trips_and_self_compares_clean() {
    let report = small_report();
    assert!(report.shapes_pass(), "registry experiments must pass on a healthy tree");

    let json = report.to_json().render();
    validate_json(&json).expect("emitted JSON must validate");
    let back = ConformanceReport::from_json(&json).expect("emitted JSON must parse");
    assert_eq!(back.experiments.len(), report.experiments.len());

    // The simulator is deterministic: a fresh run gates clean against
    // the round-tripped baseline.
    let fresh = small_report();
    let gate = drift_gate(&fresh, &back);
    assert!(gate.ok(), "unperturbed re-run must pass the gate:\n{}", gate.render());
    assert!(gate.rows_checked > 0 && gate.shapes_checked > 0);
}

#[test]
fn gate_rejects_deliberate_perturbations() {
    let baseline = small_report();
    let json = baseline.to_json().render();
    let baseline = ConformanceReport::from_json(&json).expect("parse");

    // Perturbation 1: one measurement drifts far outside its band.
    let mut drifted = baseline.clone();
    {
        let row = &mut drifted.experiments[1].rows[0];
        row.sim_measured *= 1.0 + 10.0 * row.tolerance.max(0.01);
    }
    let gate = drift_gate(&drifted, &baseline);
    assert!(!gate.ok(), "an out-of-band row must trip the gate");

    // Perturbation 2: a paper shape claim regresses.
    let mut broken = baseline.clone();
    broken.experiments[0].shapes[0].pass = false;
    let gate = drift_gate(&broken, &baseline);
    assert!(!gate.ok(), "a shape regression must trip the gate");
    assert!(gate.render().contains("shape regression"), "{}", gate.render());

    // Perturbation 3: an experiment silently disappears.
    let mut missing = baseline.clone();
    missing.experiments.remove(0);
    let gate = drift_gate(&missing, &baseline);
    assert!(!gate.ok(), "a vanished experiment must trip the gate");

    // Perturbation 4: quick run against a full baseline is refused.
    let mut wrong_mode = baseline.clone();
    wrong_mode.quick = !baseline.quick;
    let gate = drift_gate(&wrong_mode, &baseline);
    assert!(!gate.ok(), "mode mismatch must trip the gate");
}

/// Satellite: the CI `--explain` path, end to end through the real
/// binary. Build a deliberately perturbed fig5 baseline, run
/// `observatory --quick --only fig5 --baseline <it> --explain`, and
/// require (a) a failing exit status, (b) a `DRIFT.md` that names the
/// drifted experiment and the dominant hardware resource, (c) a
/// non-empty collapsed flamegraph, and (d) a version-validated
/// `BENCH_whatif.json`.
#[test]
fn explain_names_the_drifted_experiment_and_dominant_resource() {
    let dir = std::env::temp_dir().join(format!("scc_obs_explain_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();

    // A fig5 baseline whose first row is 50% off what the simulator
    // actually produces — a fresh run must trip the gate against it.
    let mut baseline = ConformanceReport::new(true);
    let fig5 = registry().into_iter().find(|e| e.id == "fig5").expect("fig5 registered");
    let (mut rep, _) = run_experiment(&fig5, true);
    rep.rows[0].sim_measured *= 1.5;
    baseline.experiments.push(rep);
    std::fs::write(path("perturbed.json"), baseline.to_json().render()).expect("write baseline");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_observatory"))
        .args([
            "--quick",
            "--only",
            "fig5",
            "--baseline",
            &path("perturbed.json"),
            "--explain",
            "--json",
            &path("BENCH_figures.json"),
            "--md",
            &path("CONFORMANCE.md"),
            "--drift",
            &path("DRIFT.md"),
            "--flame-dir",
            dir.to_str().unwrap(),
            "--artifact-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("run observatory");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "perturbed baseline must fail the gate\n{stderr}");

    let drift = std::fs::read_to_string(path("DRIFT.md")).expect("DRIFT.md written");
    assert!(drift.contains("fig5"), "DRIFT.md must name the drifted experiment:\n{drift}");
    // fig5's representative scenario is the binomial 1CL baseline; its
    // dominant hardware class is the per-hop mesh latency.
    assert!(
        drift.contains("dominant hardware class: **router-hop**"),
        "DRIFT.md must name the dominant resource:\n{drift}"
    );
    assert!(drift.contains("conservative attribution"), "diff table missing:\n{drift}");
    assert!(drift.contains("| series |"), "histogram table missing:\n{drift}");

    let flame = std::fs::read_to_string(path("flame_fig5.txt")).expect("flamegraph written");
    assert!(!flame.trim().is_empty());
    for line in flame.lines() {
        let (_stack, count) = line.rsplit_once(' ').expect("collapsed format `stack count`");
        count.parse::<u64>().expect("counts are integers");
    }

    let whatif = std::fs::read_to_string(path("BENCH_whatif.json")).expect("whatif artifact");
    let doc = Json::parse(&whatif).expect("valid JSON");
    validate_artifact_version(&doc).expect("versioned artifact");

    std::fs::remove_dir_all(&dir).ok();
}
