//! The causal auditor against *real* recorded streams: every
//! representative protocol run — plain, reliable, faulted — must audit
//! to zero violations, and the seeded mutation harness must corrupt
//! those same streams detectably.

use oc_bcast::{Algorithm, Reliability};
use scc_bench::{record_reliable_run, record_run, Scenario};
use scc_hal::Time;
use scc_obs::{audit, mutate, AuditSpec, MutationClass};
use scc_sim::{FaultPlan, SimParams};

const CORES: usize = 48;
const LINES: usize = 16;

fn policy() -> Reliability {
    Reliability { timeout: Time::from_us_f64(600.0), ..Reliability::standard() }
}

fn faulty_plan() -> FaultPlan {
    FaultPlan {
        drop_notification_ppm: 30_000,
        delay_ppm: 15_000,
        delay: Time::from_us_f64(5.0),
        ..FaultPlan::default()
    }
}

#[test]
fn plain_runs_audit_clean() {
    for alg in [Algorithm::oc_with_k(7), Algorithm::Binomial] {
        let sc = Scenario::new(alg, CORES, LINES);
        let (events, makespan) = record_run(&sc, SimParams::default()).expect("run");
        let rep = audit(&events, &AuditSpec::plain().with_makespan(makespan));
        assert!(rep.ok(), "{}: {:?}", sc.label, &rep.violations[..rep.violations.len().min(5)]);
        assert!(rep.checked() > 100, "{}: vacuous audit: {}", sc.label, rep.summary());
    }
}

#[test]
fn reliable_healthy_runs_audit_clean() {
    let sc = Scenario::new(Algorithm::oc_with_k(7), CORES, LINES);
    let (events, makespan) =
        record_reliable_run(&sc, SimParams::default(), FaultPlan::default(), policy())
            .expect("run");
    let rep = audit(&events, &AuditSpec::reliable().with_makespan(makespan));
    assert!(rep.ok(), "{:?}", &rep.violations[..rep.violations.len().min(5)]);
}

#[test]
fn faulted_runs_audit_clean() {
    let sc = Scenario::new(Algorithm::oc_with_k(7), CORES, LINES);
    let (events, makespan) =
        record_reliable_run(&sc, SimParams::default(), faulty_plan(), policy()).expect("run");
    let rep = audit(&events, &AuditSpec::faulted().with_makespan(makespan));
    assert!(rep.ok(), "{:?}", &rep.violations[..rep.violations.len().min(5)]);
}

#[test]
fn every_mutation_class_is_caught_and_classified() {
    // The faulted stream has eligible sites for all five classes
    // (wakes, bookings, span closes, tagged ops, fault events).
    let sc = Scenario::new(Algorithm::oc_with_k(7), CORES, LINES);
    let (events, makespan) =
        record_reliable_run(&sc, SimParams::default(), faulty_plan(), policy()).expect("run");
    let spec = AuditSpec::faulted().with_makespan(makespan);
    assert!(audit(&events, &spec).ok(), "baseline must be clean");
    for class in MutationClass::ALL {
        let mut corrupted = events.clone();
        let what = mutate(&mut corrupted, class, 0xC0FFEE)
            .unwrap_or_else(|| panic!("{class}: no eligible site in a faulted run"));
        let rep = audit(&corrupted, &spec);
        assert!(
            rep.classes().contains(&class.expected()),
            "{class} ({what}): expected {:?}, saw {:?} — {:?}",
            class.expected(),
            rep.classes(),
            &rep.violations[..rep.violations.len().min(5)]
        );
    }
}

#[test]
fn flight_window_suffix_audits_clean_in_window_mode() {
    let sc = Scenario::new(Algorithm::oc_with_k(7), CORES, LINES);
    let (events, _) = record_run(&sc, SimParams::default()).expect("run");
    // Emulate a flight-recorder dump: the last N events only.
    let n = events.len() / 3;
    let window = &events[events.len() - n..];
    let rep = audit(window, &AuditSpec::plain().windowed());
    assert!(rep.ok(), "{:?}", &rep.violations[..rep.violations.len().min(5)]);
    // Full-run strictness on the same suffix must complain (spans
    // opened before the window, etc. — the truncation is visible).
    assert!(!audit(window, &AuditSpec::plain()).ok());
}
