//! The fault sweep's determinism guarantee: injected faults are drawn
//! from a seeded generator in deterministic event order, so the
//! `faults` experiment — recovery counters, delivered-latency
//! percentiles, and both sidecar artifacts — is byte-identical at any
//! `--jobs` count, and every shape check passes.

use scc_bench::{registry, run_registry, Experiment};
use scc_obs::parse_faults_artifact;
use scc_obs::Json;

fn faults_only() -> Vec<Experiment> {
    registry().into_iter().filter(|e| e.id == "faults").collect()
}

#[test]
fn faults_artifacts_are_byte_identical_at_any_jobs_count() {
    let seq = run_registry(faults_only(), true, 1);
    let par = run_registry(faults_only(), true, 4);

    assert_eq!(seq.outputs.len(), 1);
    assert_eq!(par.outputs.len(), 1);
    let (s, p) = (&seq.outputs[0], &par.outputs[0]);

    assert_eq!(s.text, p.text, "faults: text diverged between --jobs 1 and --jobs 4");
    assert_eq!(s.artifacts, p.artifacts, "faults: artifacts diverged between job counts");

    // Both sidecars exist, parse strictly, and describe verified
    // delivery to all 47 destinations at every injected rate.
    let names: Vec<&str> = s.artifacts.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"BENCH_faults.json"), "missing sidecar: {names:?}");
    assert!(names.contains(&"results/FAULTS.md"), "missing sidecar: {names:?}");

    let raw = &s.artifacts.iter().find(|(n, _)| n == "BENCH_faults.json").unwrap().1;
    let curves = parse_faults_artifact(&Json::parse(raw).expect("sidecar is valid JSON"))
        .expect("sidecar parses strictly");
    assert_eq!(curves.len(), 3, "oc_k47, oc_k7, binomial");
    for c in &curves {
        assert!(!c.points.is_empty(), "{}: empty curve", c.id);
        for pt in &c.points {
            assert_eq!(pt.delivered, 47, "{} drop={}ppm: lost a destination", c.id, pt.drop_ppm);
        }
        let top = c.points.last().unwrap();
        assert!(top.faults > 0, "{}: top rate injected nothing", c.id);
        assert!(top.recoveries > 0, "{}: faults fired but nothing recovered", c.id);
    }

    // The shape checks the experiment declares must all hold.
    for sh in &s.report.shapes {
        assert!(sh.pass, "shape failed: {} ({})", sh.name, sh.detail);
    }
    assert!(s.report.shapes.len() >= 9, "3 scenarios x 3 shapes");
}
