//! The parallel observatory's core guarantee: running the registry at
//! any `--jobs` count produces byte-identical artifacts. A
//! representative slice (model-only, multi-unit measured, and
//! finalize-heavy experiments) runs sequentially and at `--jobs 4`;
//! every experiment's legacy text must match byte for byte, and the
//! `ConformanceReport` JSON must be identical after zeroing the only
//! legitimately nondeterministic quantities (host wall-clock times).
//! Engine counters are compared *exactly* — that is what proves the
//! thread-local attribution charges each unit with precisely its own
//! simulator work, however the units were scheduled.

use scc_bench::{registry, run_registry, Experiment};
use scc_obs::ConformanceReport;

const SLICE: [&str; 4] = ["fig5", "fig6", "table2", "linkstress"];

fn slice() -> Vec<Experiment> {
    registry().into_iter().filter(|e| SLICE.contains(&e.id)).collect()
}

fn report_of(outputs: &[scc_bench::ExpOutput], quick: bool) -> ConformanceReport {
    let mut r = ConformanceReport::new(quick);
    for o in outputs {
        let mut exp = o.report.clone();
        // Wall time is host scheduling, not simulation — the one field
        // allowed to differ between job counts.
        exp.metrics.wall_s = 0.0;
        r.experiments.push(exp);
    }
    r
}

#[test]
fn jobs_4_output_is_byte_identical_to_sequential() {
    let seq = run_registry(slice(), true, 1);
    let par = run_registry(slice(), true, 4);

    assert_eq!(seq.outputs.len(), par.outputs.len());
    for (s, p) in seq.outputs.iter().zip(&par.outputs) {
        assert_eq!(s.report.id, p.report.id);
        assert_eq!(s.text, p.text, "{}: text diverged between --jobs 1 and --jobs 4", s.report.id);
        assert_eq!(
            s.artifacts, p.artifacts,
            "{}: artifacts diverged between --jobs 1 and --jobs 4",
            s.report.id
        );
    }

    // The full structured reports — rows, shapes, and the *exact*
    // engine counters (runs/events/heap pushes/coalesced steps) — must
    // serialize identically once wall clocks are zeroed.
    let sj = report_of(&seq.outputs, true).to_json().render();
    let pj = report_of(&par.outputs, true).to_json().render();
    assert_eq!(sj, pj, "ConformanceReport JSON diverged between job counts");

    // Scheduling self-metrics describe the runs truthfully.
    assert_eq!(seq.run.jobs, 1);
    assert_eq!(par.run.jobs, 4);
    assert_eq!(seq.run.units, par.run.units, "unit decomposition must not depend on jobs");
    assert!(par.run.peak_in_flight >= 1);
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    let a = run_registry(slice(), true, 4);
    let b = run_registry(slice(), true, 4);
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        assert_eq!(x.text, y.text, "{}: parallel run is not reproducible", x.report.id);
    }
    let aj = report_of(&a.outputs, true).to_json().render();
    let bj = report_of(&b.outputs, true).to_json().render();
    assert_eq!(aj, bj);
}
