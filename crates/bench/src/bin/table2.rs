//! Table 2: modeled peak broadcast throughput (MB/s) for OC-Bcast
//! (k = 2, 7, 47) vs the two-sided scatter-allgather, both from the
//! simplified Formulas (15)/(16) and from the complete model.
//!
//! Run: `cargo run -p scc-bench --bin table2`

use scc_model::bcast::FullModelCfg;
use scc_model::series::table2_rows;
use scc_model::{oc_throughput_simplified, sag_throughput_simplified, ModelParams};

fn main() {
    let params = ModelParams::paper();
    let cfg = FullModelCfg::default();
    let rows = table2_rows(&params, &cfg, 48, &[2, 7, 47]);

    // The numbers printed in the paper's Table 2.
    let paper: [(&str, f64); 4] = [
        ("OC-Bcast, k=2", 35.22),
        ("OC-Bcast, k=7", 34.30),
        ("OC-Bcast, k=47", 35.88),
        ("scatter-allgather", 13.38),
    ];

    println!("# Table 2 — analytical peak throughput (MB/s), P = 48, M_oc = 96 CL");
    println!("{:<20} {:>10} {:>10}", "algorithm", "model", "paper");
    for ((label, ours), (plabel, theirs)) in rows.iter().zip(paper) {
        assert_eq!(label, plabel);
        println!("{label:<20} {ours:>10.2} {theirs:>10.2}");
    }
    println!();
    println!(
        "# simplified Formula (15): {:.2} MB/s (k-independent)",
        oc_throughput_simplified(&params, 96)
    );
    println!("# simplified Formula (16): {:.2} MB/s", sag_throughput_simplified(&params, 48, 96));

    let sag = rows.last().expect("rows").1;
    let ratio = rows[1].1 / sag;
    println!(
        "# OC-Bcast (k=7) / scatter-allgather = {ratio:.2}x (paper: ~2.6x, \"almost 3 times\")"
    );
    assert!(ratio > 2.3, "the almost-3x headline must hold, got {ratio:.2}");
}
