//! Table 2: modeled peak broadcast throughput (MB/s) for OC-Bcast
//! (k = 2, 7, 47) vs the two-sided scatter-allgather, both from the
//! simplified Formulas (15)/(16) and from the complete model.
//!
//! Thin wrapper over the `table2` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run -p scc-bench --bin table2`

fn main() {
    scc_bench::run_standalone("table2");
}
