//! Visualize one broadcast as a per-core timeline (text Gantt) plus a
//! resource-utilization summary — the debugging view of the pipeline
//! described in Section 4: the root's puts, the parallel gets of each
//! tree level, the flag traffic between them.
//!
//! Run: `cargo run --release -p scc-bench --bin gantt [k] [cache_lines]`

use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, MemRange, Rma, RmaResult};
use scc_rcce::MpbAllocator;
use scc_sim::{render_gantt, run_spmd, summarize, SimConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let lines: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(192);
    let p = 12usize;
    let bytes = lines * 32;

    let cfg = SimConfig { num_cores: p, mem_bytes: 1 << 20, trace: true, ..Default::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, Algorithm::oc_with_k(k), p).expect("ctx");
        let r = MemRange::new(0, bytes);
        if c.core().index() == 0 {
            c.mem_write(0, &vec![0x5Au8; bytes])?;
        }
        b.bcast(c, CoreId(0), r)
    })
    .expect("simulation");
    for r in &rep.results {
        r.as_ref().expect("core ok");
    }

    println!("OC-Bcast k={k}, {lines} cache lines, P={p} — one broadcast\n");
    let trace = rep.trace.as_deref().expect("trace enabled");
    print!("{}", render_gantt(trace, p, 100));

    println!();
    let summary = summarize(trace, p);
    println!("{:>4} {:>6} {:>7} {:>12} {:>12}", "core", "ops", "lines", "busy", "polling");
    for (i, s) in summary.per_core.iter().enumerate() {
        println!(
            "{:>4} {:>6} {:>7} {:>12} {:>12}",
            format!("C{i}"),
            s.ops,
            s.lines,
            s.busy.to_string(),
            s.polling.to_string()
        );
    }

    println!();
    let span = rep.makespan.as_ns_f64();
    println!("makespan: {}", rep.makespan);
    println!(
        "utilization — MPB ports: {:.1}%  routers: {:.2}%  memory controllers: {:.1}%",
        rep.stats.port_busy.as_ns_f64() / (span * 24.0) * 100.0,
        rep.stats.router_busy.as_ns_f64() / (span * 24.0) * 100.0,
        rep.stats.mc_busy.as_ns_f64() / (span * 4.0) * 100.0,
    );
    println!(
        "queueing — ports: {} routers: {} controllers: {}",
        rep.stats.port_wait, rep.stats.router_wait, rep.stats.mc_wait
    );
}
