//! Causal what-if profiles: rerun the paper's two extreme broadcast
//! scenarios (flat-tree OC-Bcast at 96 cache lines, binomial at 1)
//! with each simulator cost class virtually scaled ±10%, and report the
//! makespan sensitivity per class — the flat tree must come out
//! port-bound, the binomial latency-bound.
//!
//! Thin wrapper over the `whatif` registry entry; see
//! `scc_bench::experiments::whatif`.
//!
//! Run: `cargo run --release -p scc-bench --bin whatif`

fn main() {
    scc_bench::run_standalone("whatif");
}
