//! Figure 5: the k-ary message propagation tree and the binary
//! notification trees, printed for the paper's example (s = 0, P = 12,
//! k = 7) and for the full 48-core chip.
//!
//! Run: `cargo run -p scc-bench --bin fig5`

use oc_bcast::{KaryTree, NotifyGroup};
use scc_hal::CoreId;

fn print_tree(p: usize, k: usize, root: u8) {
    let tree = KaryTree::new(p, k, CoreId(root));
    println!("# message propagation tree: P = {p}, k = {k}, source C{root}");
    let mut level: Vec<CoreId> = vec![tree.root()];
    let mut depth = 0;
    while !level.is_empty() {
        let mut next = Vec::new();
        print!("level {depth}:");
        for c in &level {
            print!(" {c}");
            next.extend(tree.children(*c));
        }
        println!();
        level = next;
        depth += 1;
    }
    println!("# binary notification trees (parent → forwarded-to):");
    for c in (0..p).map(|i| CoreId(i as u8)) {
        if let Some(group) = NotifyGroup::of_parent(&tree, c, 2) {
            println!("  group of {c}:");
            for m in group.members() {
                let f = group.forwards(*m);
                if !f.is_empty() {
                    let list: Vec<String> = f.iter().map(|x| x.to_string()).collect();
                    println!("    {m} -> {}", list.join(", "));
                }
            }
        }
    }
    println!();
}

fn main() {
    // The paper's figure.
    print_tree(12, 7, 0);
    // The experimental configuration.
    print_tree(48, 7, 0);
}
