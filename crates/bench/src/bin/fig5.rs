//! Figure 5: the k-ary message propagation tree and the binary
//! notification trees, printed for the paper's example (s = 0, P = 12,
//! k = 7) and for the full 48-core chip.
//!
//! Thin wrapper over the `fig5` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run -p scc-bench --bin fig5`

fn main() {
    scc_bench::run_standalone("fig5");
}
