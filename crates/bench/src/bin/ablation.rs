//! Ablation study of OC-Bcast's design choices (DESIGN.md §4):
//!
//! * notification fan-out — binary tree (paper) vs ternary vs the
//!   parent notifying all children sequentially;
//! * double buffering on/off, with the standard and the `leaf_direct`
//!   consumption patterns;
//! * the Section 5.4 `leaf_direct` optimization itself;
//! * chunk size (M_oc) sweep;
//! * tree layout — the paper's id-based k-ary heap vs the
//!   topology-aware extension;
//! * the Section 5.4 alternative design: scatter-allgather over
//!   one-sided RMA, vs the two-sided baseline and vs OC-Bcast.
//!
//! Run: `cargo run --release -p scc-bench --bin ablation`

use oc_bcast::{Algorithm, OcConfig, TreeLayout, TreeStrategy};
use scc_bench::{measure_bcast, paper_chip, quick};
use scc_hal::CoreId;

fn run(cfg_oc: OcConfig, bytes: usize) -> (f64, f64) {
    let cfg = paper_chip();
    let t = measure_bcast(&cfg, Algorithm::OcBcast(cfg_oc), CoreId(0), bytes, 1, 2).expect("sim");
    (t.latency_us, t.throughput_mb_s)
}

fn main() {
    let small = 32; // 1 CL
    let large = if quick() { 96 * 32 * 8 } else { 96 * 32 * 40 };

    println!("# --- notification fan-out (k = 7, 1 CL latency / large-msg throughput) ---");
    for (name, fanout) in [("binary (paper)", 2usize), ("ternary", 3), ("sequential", 64)] {
        let c = OcConfig { notify_fanout: fanout, ..OcConfig::default() };
        let (l, _) = run(c, small);
        let (_, t) = run(c, large);
        println!("{name:<16} latency {l:>8.2} µs   throughput {t:>7.2} MB/s");
    }
    println!();

    println!("# --- notification fan-out at k = 47 (polling-heavy regime) ---");
    for (name, fanout) in [("binary (paper)", 2usize), ("sequential", 64)] {
        let c = OcConfig { k: 47, notify_fanout: fanout, chunk_lines: 96, ..OcConfig::default() };
        let (l, _) = run(c, small);
        println!("{name:<16} 1-CL latency {l:>8.2} µs");
    }
    println!();

    println!("# --- double buffering (large-message throughput, MB/s) ---");
    for (name, leaf_direct) in [("standard steps", false), ("leaf_direct", true)] {
        let on = run(OcConfig { leaf_direct, ..OcConfig::default() }, large).1;
        let off =
            run(OcConfig { leaf_direct, double_buffer: false, ..OcConfig::default() }, large).1;
        println!("{name:<16} double {on:>7.2}   single {off:>7.2}   gain {:>5.2}x", on / off);
    }
    println!("# (with the paper's early done-release the single buffer keeps up;");
    println!("#  with monolithic consumption the ping-pong penalty appears — see EXPERIMENTS.md)");
    println!();

    println!("# --- leaf_direct (Section 5.4 optimization the paper omits) ---");
    for bytes in [small, 96 * 32, large] {
        let base = run(OcConfig::default(), bytes).0;
        let opt = run(OcConfig { leaf_direct: true, ..OcConfig::default() }, bytes).0;
        println!(
            "{:>8} B: standard {base:>9.2} µs   leaf_direct {opt:>9.2} µs   gain {:>5.1}%",
            bytes,
            (1.0 - opt / base) * 100.0
        );
    }
    println!();

    println!("# --- chunk size M_oc (large-message throughput, MB/s) ---");
    for chunk in [24usize, 48, 96, 120] {
        let c = OcConfig { chunk_lines: chunk, ..OcConfig::default() };
        let (_, t) = run(c, large);
        println!(
            "M_oc = {chunk:>3} CL: {t:>7.2} MB/s{}",
            if chunk == 96 { "  (paper)" } else { "" }
        );
    }
    println!();

    println!("# --- tree layout: id-based (paper) vs topology-aware (extension) ---");
    for k in [2usize, 7] {
        for (name, strategy) in
            [("by-id (paper)", TreeStrategy::ById), ("topology-aware", TreeStrategy::TopologyAware)]
        {
            let c = OcConfig { k, strategy, ..OcConfig::default() };
            let (l1, _) = run(c, small);
            let (l96, _) = run(c, 96 * 32);
            let dist = TreeLayout::build(strategy, 48, k, CoreId(0)).total_parent_distance();
            println!(
                "k={k} {name:<16} 1CL {l1:>7.2} µs   96CL {l96:>8.2} µs   Σ parent-dist {dist}"
            );
        }
    }
    println!();

    println!("# --- Section 5.4 alternative: one-sided scatter-allgather ---");
    let chip = paper_chip();
    for (label, alg) in [
        ("s-ag two-sided", Algorithm::ScatterAllgather),
        ("s-ag one-sided", Algorithm::RmaScatterAllgather),
        ("OC-Bcast k=7", Algorithm::oc_default()),
    ] {
        let t = measure_bcast(&chip, alg, CoreId(0), large, 0, 1).expect("sim");
        println!("{label:<16} peak {:>7.2} MB/s", t.throughput_mb_s);
    }
    println!("# one-sided RMA roughly doubles scatter-allgather, but the algorithm");
    println!("# shape (no off-chip round trip per hop) is what OC-Bcast adds on top.");
}
