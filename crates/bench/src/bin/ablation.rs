//! Ablation study of OC-Bcast's design choices (DESIGN.md §4):
//! notification fan-out, double buffering, the Section 5.4
//! `leaf_direct` optimization, chunk size, tree layout, and the
//! one-sided scatter-allgather alternative.
//!
//! Thin wrapper over the `ablation` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run --release -p scc-bench --bin ablation`

fn main() {
    scc_bench::run_standalone("ablation");
}
