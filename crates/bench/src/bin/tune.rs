//! Configuration-space sweep: OC-Bcast latency/throughput over the
//! (k × chunk size × notification fan-out × tree strategy) grid on the
//! simulated chip, reporting the best configuration per objective.
//!
//! Run: `cargo run --release -p scc-bench --bin tune`
//! (`SCC_BENCH_QUICK=1` shrinks the grid.)

use oc_bcast::{Algorithm, OcConfig, TreeStrategy};
use scc_bench::{measure_bcast, paper_chip, quick};
use scc_hal::CoreId;

fn main() {
    let cfg = paper_chip();
    let ks: &[usize] = if quick() { &[2, 7] } else { &[2, 4, 7, 12, 24, 47] };
    let chunks: &[usize] = if quick() { &[96] } else { &[48, 96, 120] };
    let fanouts: &[usize] = &[2, 3];
    let strategies = [TreeStrategy::ById, TreeStrategy::TopologyAware];

    let small = 32; // 1 CL
    let large = if quick() { 96 * 32 * 8 } else { 96 * 32 * 24 };

    let mut best_lat: (f64, String) = (f64::INFINITY, String::new());
    let mut best_tput: (f64, String) = (0.0, String::new());

    println!("{:<42} {:>10} {:>10}", "configuration", "1CL (µs)", "peak MB/s");
    for &k in ks {
        for &chunk_lines in chunks {
            // k + 1 flags + two buffers + the measurement harness's
            // 6 barrier lines must fit the MPB.
            if 1 + k + 2 * chunk_lines + 6 > 256 {
                continue;
            }
            for &notify_fanout in fanouts {
                for &strategy in &strategies {
                    let oc =
                        OcConfig { k, chunk_lines, notify_fanout, strategy, ..OcConfig::default() };
                    let lat = measure_bcast(&cfg, Algorithm::OcBcast(oc), CoreId(0), small, 1, 2)
                        .expect("sim")
                        .latency_us;
                    let tput = measure_bcast(&cfg, Algorithm::OcBcast(oc), CoreId(0), large, 0, 1)
                        .expect("sim")
                        .throughput_mb_s;
                    let label = format!(
                        "k={k:<2} M_oc={chunk_lines:<3} fanout={notify_fanout} {:?}",
                        strategy
                    );
                    println!("{label:<42} {lat:>10.2} {tput:>10.2}");
                    if lat < best_lat.0 {
                        best_lat = (lat, label.clone());
                    }
                    if tput > best_tput.0 {
                        best_tput = (tput, label);
                    }
                }
            }
        }
    }
    println!();
    println!("best 1-CL latency : {:.2} µs  ({})", best_lat.0, best_lat.1);
    println!("best throughput   : {:.2} MB/s ({})", best_tput.0, best_tput.1);
    println!("# paper's choice — k=7, M_oc=96, binary fan-out, id tree — trades a few");
    println!("# percent of each objective for contention headroom (Sections 3.3/5.2).");
}
