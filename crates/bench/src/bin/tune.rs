//! Configuration-space sweep: OC-Bcast latency/throughput over the
//! (k × chunk size × notification fan-out × tree strategy) grid on the
//! simulated chip, reporting the best configuration per objective.
//!
//! Thin wrapper over the `tune` entry of the experiment registry
//! (`scc_bench::experiments`); the `observatory` binary runs the same
//! code with structured conformance output.
//!
//! Run: `cargo run --release -p scc-bench --bin tune`
//! (`SCC_BENCH_QUICK=1` shrinks the grid.)

fn main() {
    scc_bench::run_standalone("tune");
}
