//! The conformance observatory: run every registered experiment (all
//! paper figures/tables plus the mesh heatmaps), emit the structured
//! `BENCH_figures.json` artifact and the human drift report
//! `results/CONFORMANCE.md`, and — when a baseline is supplied — gate
//! on drift: per-row tolerance bands plus shape-regression detection.
//!
//! ```text
//! cargo run --release -p scc-bench --bin observatory [--quick]
//!     [--jobs N]               host worker threads fanning out over
//!                              experiments AND their sweep units
//!                              (default: SCC_JOBS or all host cores;
//!                              --jobs 1 is the exact sequential path —
//!                              every artifact is byte-identical at any
//!                              job count)
//!     [--only fig3,fig8a]      run a subset of the registry
//!     [--json PATH]            where to write BENCH_figures.json
//!     [--md PATH]              where to write CONFORMANCE.md
//!     [--heatmaps PATH]        where to write the heatmap text
//!     [--baseline PATH]        drift-gate against this baseline
//!     [--write-baseline PATH]  also write the fresh report here
//!     [--artifact-dir DIR]     where experiment sidecars land (".")
//!     [--journeys]             also write the journey sidecars the
//!                              `skew` experiment produces
//!                              (BENCH_journeys.json, results/SKEW.md,
//!                              results/movie_<id>.txt) and stamp the
//!                              gate-ignored `journeys` block into the
//!                              report; without the flag those sidecars
//!                              are dropped so default runs leave no
//!                              new files behind
//!     [--faults]               also write the fault-degradation
//!                              sidecars the `faults` experiment
//!                              produces (BENCH_faults.json,
//!                              results/FAULTS.md) and stamp the
//!                              gate-ignored `faults` block into the
//!                              report; gated exactly like --journeys
//!     [--soak]                 also write the soak sidecars the `soak`
//!                              experiment produces (BENCH_soak.json,
//!                              results/SOAK.md, the OpenMetrics
//!                              exposition results/soak_metrics.txt,
//!                              and any results/soak_dump_* forensic
//!                              windows) and stamp the gate-ignored
//!                              `soak` block into the report; gated
//!                              exactly like --journeys
//!     [--audit]                also write the causal-audit sidecars
//!                              the `audit` experiment produces
//!                              (BENCH_audit.json, results/AUDIT.md)
//!                              and stamp the gate-ignored `audit`
//!                              block into the report; gated exactly
//!                              like --journeys
//!     [--explain]              on gate failure, re-run the drifted
//!                              experiments' scenarios with recording
//!                              on and write a drift explanation
//!     [--drift PATH]           where --explain writes its report
//!                              (results/DRIFT.md)
//!     [--flame-dir DIR]        where --explain writes flamegraphs
//!                              (results)
//!     [--list]                 print registry ids and exit
//! ```
//!
//! Exit status: `1` if any shape check failed or the drift gate
//! tripped, `0` otherwise (`--explain` never changes the verdict, it
//! only adds diagnosis).

use scc_bench::{
    quick, record_run, registry, representative_scenario, run_registry, whatif_artifact,
    whatif_profile,
};
use scc_obs::report::validate_json;
use scc_obs::{
    drift_gate, flamegraph_collapsed, parse_audit_artifact, parse_faults_artifact,
    parse_journeys_artifact, parse_soak_artifact, AuditMetrics, ConformanceReport, DiffReport,
    DriftReport, FaultsMetrics, JourneysMetrics, Json, PhaseProfile, RunHistograms, SoakMetrics,
};
use scc_sim::SimParams;
use std::fmt::Write as _;
use std::process::ExitCode;

struct Args {
    quick: bool,
    jobs: usize,
    only: Option<Vec<String>>,
    json: String,
    md: String,
    heatmaps: String,
    baseline: Option<String>,
    write_baseline: Option<String>,
    artifact_dir: String,
    journeys: bool,
    faults: bool,
    soak: bool,
    audit: bool,
    explain: bool,
    drift: String,
    flame_dir: String,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: quick(),
        jobs: scc_bench::pool::jobs_default(),
        only: None,
        json: "BENCH_figures.json".to_string(),
        md: "results/CONFORMANCE.md".to_string(),
        heatmaps: "results/heatmaps.txt".to_string(),
        baseline: None,
        write_baseline: None,
        artifact_dir: ".".to_string(),
        journeys: false,
        faults: false,
        soak: false,
        audit: false,
        explain: false,
        drift: "results/DRIFT.md".to_string(),
        flame_dir: "results".to_string(),
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--jobs needs a positive integer")?
            }
            "--list" => args.list = true,
            "--journeys" => args.journeys = true,
            "--faults" => args.faults = true,
            "--soak" => args.soak = true,
            "--audit" => args.audit = true,
            "--explain" => args.explain = true,
            "--only" => {
                args.only =
                    Some(value("--only")?.split(',').map(|s| s.trim().to_string()).collect())
            }
            "--json" => args.json = value("--json")?,
            "--md" => args.md = value("--md")?,
            "--heatmaps" => args.heatmaps = value("--heatmaps")?,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--artifact-dir" => args.artifact_dir = value("--artifact-dir")?,
            "--drift" => args.drift = value("--drift")?,
            "--flame-dir" => args.flame_dir = value("--flame-dir")?,
            other => return Err(format!("unknown flag `{other}` (see --help in the doc comment)")),
        }
    }
    Ok(args)
}

/// The sidecars only `--journeys` runs write (and the only artifacts
/// the flag gates): the journey book, the skew digest, and the
/// per-scenario congestion movies.
fn is_journey_artifact(rel: &str) -> bool {
    rel == "BENCH_journeys.json" || rel == "results/SKEW.md" || rel.starts_with("results/movie_")
}

/// The sidecars only `--faults` runs write: the degradation-curve
/// artifact and its human digest.
fn is_faults_artifact(rel: &str) -> bool {
    rel == "BENCH_faults.json" || rel == "results/FAULTS.md"
}

/// The sidecars only `--soak` runs write: the soak rollup artifact,
/// its human digest, the OpenMetrics exposition, and the SLO-breach
/// forensic dumps.
fn is_soak_artifact(rel: &str) -> bool {
    rel == "BENCH_soak.json"
        || rel == "results/SOAK.md"
        || rel == "results/soak_metrics.txt"
        || rel.starts_with("results/soak_dump_")
}

/// The sidecars only `--audit` runs write: the causal-audit artifact
/// and its human digest (scenario table + mutation-detection matrix).
fn is_audit_artifact(rel: &str) -> bool {
    rel == "BENCH_audit.json" || rel == "results/AUDIT.md"
}

/// Write `content`, creating parent directories as needed.
fn write_file(path: &str, content: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("observatory: {e}");
            return ExitCode::FAILURE;
        }
    };

    let reg = registry();
    if args.list {
        for e in &reg {
            println!("{:<12} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(only) = &args.only {
        for id in only {
            if !reg.iter().any(|e| e.id == id) {
                eprintln!("observatory: unknown experiment `{id}` (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }

    let selected: Vec<_> = reg
        .into_iter()
        .filter(|e| args.only.as_ref().is_none_or(|only| only.iter().any(|id| id == e.id)))
        .collect();
    eprintln!(
        "observatory: running {} experiments with --jobs {}{}",
        selected.len(),
        args.jobs,
        if args.jobs == 1 { " (sequential)" } else { "" }
    );
    let run = run_registry(selected, args.quick, args.jobs);

    let mut report = ConformanceReport::new(args.quick);
    let mut heatmap_text = None;
    let mut journeys_metrics: Option<JourneysMetrics> = None;
    let mut faults_metrics: Option<FaultsMetrics> = None;
    let mut soak_metrics: Option<SoakMetrics> = None;
    let mut audit_metrics: Option<AuditMetrics> = None;
    for out in run.outputs {
        let exp_report = out.report;
        eprintln!(
            "observatory: {:<12} {} ({:.1}s seq-equiv, {} units, {} sim runs, {} rows, {} shapes)",
            exp_report.id,
            if exp_report.shapes_pass() { "ok" } else { "SHAPE FAILURE" },
            exp_report.metrics.wall_s,
            exp_report.metrics.units,
            exp_report.metrics.sim_runs,
            exp_report.rows.len(),
            exp_report.shapes.len(),
        );
        if exp_report.id == "heatmap" {
            heatmap_text = Some(out.text);
        }
        for (rel, contents) in &out.artifacts {
            if is_journey_artifact(rel) {
                if !args.journeys {
                    continue;
                }
                if rel == "BENCH_journeys.json" {
                    journeys_metrics = match Json::parse(contents)
                        .map_err(|e| format!("unparseable {rel}: {e}"))
                        .and_then(|doc| parse_journeys_artifact(&doc))
                    {
                        Ok(books) => Some(JourneysMetrics {
                            scenarios: books.len() as u64,
                            journeys: books.iter().map(|(_, b)| b.journeys.len() as u64).sum(),
                            max_delivery_us: books
                                .iter()
                                .flat_map(|(_, b)| b.journeys.iter())
                                .map(|j| j.latency().as_us_f64())
                                .fold(0.0, f64::max),
                        }),
                        Err(e) => {
                            eprintln!("observatory: BUG: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                }
            }
            if is_faults_artifact(rel) {
                if !args.faults {
                    continue;
                }
                if rel == "BENCH_faults.json" {
                    faults_metrics = match Json::parse(contents)
                        .map_err(|e| format!("unparseable {rel}: {e}"))
                        .and_then(|doc| parse_faults_artifact(&doc))
                    {
                        Ok(curves) => Some(FaultsMetrics {
                            scenarios: curves.len() as u64,
                            points: curves.iter().map(|c| c.points.len() as u64).sum(),
                            injected_faults: curves
                                .iter()
                                .flat_map(|c| c.points.iter())
                                .map(|p| p.faults)
                                .sum(),
                            recoveries: curves
                                .iter()
                                .flat_map(|c| c.points.iter())
                                .map(|p| p.recoveries)
                                .sum(),
                        }),
                        Err(e) => {
                            eprintln!("observatory: BUG: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                }
            }
            if is_soak_artifact(rel) {
                if !args.soak {
                    continue;
                }
                if rel == "BENCH_soak.json" {
                    soak_metrics = match Json::parse(contents)
                        .map_err(|e| format!("unparseable {rel}: {e}"))
                        .and_then(|doc| parse_soak_artifact(&doc))
                    {
                        Ok(scenarios) => Some(SoakMetrics {
                            scenarios: scenarios.len() as u64,
                            epochs: scenarios.iter().map(|s| s.epochs()).sum(),
                            breaches: scenarios.iter().map(|s| s.breaches() as u64).sum(),
                            dumps: scenarios.iter().map(|s| s.dumps() as u64).sum(),
                        }),
                        Err(e) => {
                            eprintln!("observatory: BUG: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                }
            }
            if is_audit_artifact(rel) {
                if !args.audit {
                    continue;
                }
                if rel == "BENCH_audit.json" {
                    audit_metrics = match Json::parse(contents)
                        .map_err(|e| format!("unparseable {rel}: {e}"))
                        .and_then(|doc| parse_audit_artifact(&doc))
                    {
                        Ok(scenarios) => Some(AuditMetrics {
                            scenarios: scenarios.len() as u64,
                            checks: scenarios.iter().map(|s| s.checks).sum(),
                            violations: scenarios.iter().map(|s| s.violations).sum(),
                            mutations: scenarios.iter().map(|s| s.mutations.len() as u64).sum(),
                            mutations_caught: scenarios
                                .iter()
                                .flat_map(|s| s.mutations.iter())
                                .filter(|m| m.detected && m.classified)
                                .count() as u64,
                        }),
                        Err(e) => {
                            eprintln!("observatory: BUG: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                }
            }
            let path = format!("{}/{rel}", args.artifact_dir);
            if let Err(e) = write_file(&path, contents) {
                eprintln!("observatory: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("observatory: wrote {path}");
        }
        report.experiments.push(exp_report);
    }
    eprintln!(
        "observatory: wall {:.1}s vs {:.1}s sequential-equivalent ({:.2}x, {} units, \
         {:.1} units/s, peak {} sims in flight)",
        run.run.wall_s,
        run.run.seq_s,
        run.run.speedup(),
        run.run.units,
        run.run.units_per_sec(),
        run.run.peak_in_flight,
    );
    report.run = Some(run.run);
    report.journeys = journeys_metrics;
    report.faults = faults_metrics;
    report.soak = soak_metrics;
    report.audit = audit_metrics;

    // Serialize, self-validate, and write the artifacts.
    let json = report.to_json().render();
    if let Err(e) = validate_json(&json) {
        eprintln!("observatory: BUG: emitted JSON does not validate: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_file(&args.json, &json) {
        eprintln!("observatory: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("observatory: wrote {}", args.json);
    if let Some(path) = &args.write_baseline {
        if let Err(e) = write_file(path, &json) {
            eprintln!("observatory: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("observatory: wrote baseline {path}");
    }
    if let Some(text) = &heatmap_text {
        if let Err(e) = write_file(&args.heatmaps, text) {
            eprintln!("observatory: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("observatory: wrote {}", args.heatmaps);
    }

    // The markdown drift report, with the gate verdict appended when a
    // baseline is available.
    let mut md = report.render_markdown();
    let mut failed = !report.shapes_pass();
    let mut gate_report: Option<DriftReport> = None;
    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|s| {
            ConformanceReport::from_json(&s).map_err(|e| format!("unparseable baseline: {e}"))
        }) {
            Ok(baseline) => {
                let gate = drift_gate(&report, &baseline);
                md.push_str("\n## Drift gate\n\n");
                md.push_str(&format!("Baseline: `{path}`\n\n"));
                md.push_str(&gate.render());
                eprint!("{}", gate.render());
                failed |= !gate.ok();
                gate_report = Some(gate);
            }
            Err(e) => {
                eprintln!("observatory: {e}");
                failed = true;
            }
        }
    }
    if let Err(e) = write_file(&args.md, &md) {
        eprintln!("observatory: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("observatory: wrote {}", args.md);

    // Drift explanation: re-run each drifted experiment's representative
    // scenario with recording on and attribute where its time goes.
    if args.explain && failed {
        let mut ids: Vec<String> = Vec::new();
        if let Some(g) = &gate_report {
            for v in &g.violations {
                if !v.experiment.is_empty() && !ids.contains(&v.experiment) {
                    ids.push(v.experiment.clone());
                }
            }
        }
        for e in &report.experiments {
            if !e.shapes_pass() && !ids.contains(&e.id) {
                ids.push(e.id.clone());
            }
        }
        const EXPLAIN_CAP: usize = 5;
        if ids.len() > EXPLAIN_CAP {
            eprintln!(
                "observatory: --explain: {} drifted experiments, explaining the first {EXPLAIN_CAP}",
                ids.len()
            );
            ids.truncate(EXPLAIN_CAP);
        }
        if ids.is_empty() {
            eprintln!("observatory: --explain: no experiment-level failure to explain");
        } else if let Err(e) = explain(&ids, gate_report.as_ref(), &args) {
            eprintln!("observatory: --explain: {e}");
            return ExitCode::FAILURE;
        }
    }

    if failed {
        eprintln!("observatory: FAILED (shape check or drift gate)");
        ExitCode::FAILURE
    } else {
        eprintln!("observatory: all experiments conform");
        ExitCode::SUCCESS
    }
}

/// Produce the drift explanation: for every drifted experiment, record
/// its representative scenario, scan the cost classes, and write the
/// what-if tables, differential critical path, latency histograms and
/// a flamegraph. Emits `DRIFT.md` plus `flame_<id>.txt` per experiment
/// and a fresh `BENCH_whatif.json` from the scans.
fn explain(ids: &[String], gate: Option<&DriftReport>, args: &Args) -> Result<(), String> {
    let factors: &'static [f64] = if args.quick { &[1.1] } else { &[0.9, 1.1] };
    let mut md = String::new();
    let _ = writeln!(md, "# Drift explanation\n");
    if let Some(g) = gate {
        let _ = writeln!(md, "```\n{}```\n", g.render());
    }
    // The per-experiment diagnoses are independent — fan them out on the
    // same worker budget as the registry run, then stitch the report
    // together in the caller's id order.
    type ExplainResult = Result<(String, String, scc_obs::WhatIfProfile), String>;
    let tasks: Vec<scc_bench::pool::Task<ExplainResult>> = ids
        .iter()
        .map(|id| {
            let id = id.clone();
            scc_bench::pool::Task { cost: 1, run: Box::new(move || explain_one(&id, factors)) }
        })
        .collect();
    let sections = scc_bench::pool::run_tasks(args.jobs, tasks);
    let mut profiles = Vec::new();
    for (id, section) in ids.iter().zip(sections) {
        let (section_md, flame, wi) = section?;
        md.push_str(&section_md);
        let fpath = format!("{}/flame_{id}.txt", args.flame_dir);
        write_file(&fpath, &flame)?;
        let _ = writeln!(
            md,
            "\nflamegraph: `{fpath}` ({} collapsed stacks — feed to inferno/speedscope)",
            flame.lines().count()
        );
        let _ = md.write_char('\n');
        profiles.push(wi);
    }
    write_file(&args.drift, &md)?;
    eprintln!("observatory: wrote {}", args.drift);
    let wpath = format!("{}/BENCH_whatif.json", args.artifact_dir);
    write_file(&wpath, &whatif_artifact(&profiles, args.quick))?;
    eprintln!("observatory: wrote {wpath}");
    Ok(())
}

/// One experiment's drift diagnosis: the markdown section (sans the
/// flamegraph pointer, which the caller adds after writing the file),
/// the collapsed flamegraph text, and the what-if profile.
fn explain_one(
    id: &str,
    factors: &'static [f64],
) -> Result<(String, String, scc_obs::WhatIfProfile), String> {
    let mut md = String::new();
    let sc = representative_scenario(id);
    let _ = writeln!(md, "## {id} — scenario `{}`\n", sc.label);

    let (events, makespan) =
        record_run(&sc, SimParams::default()).map_err(|e| format!("{id}: record: {e}"))?;
    let _ = writeln!(md, "nominal makespan {makespan} over {} events\n", events.len());

    // Which cost class moves this scenario?
    let wi = whatif_profile(&sc, factors).map_err(|e| format!("{id}: what-if: {e}"))?;
    let _ = writeln!(md, "### What-if sensitivity\n");
    md.push_str(&wi.render_markdown());
    let _ = md.write_char('\n');

    // Fingerprint of the dominant hardware class: where time moves
    // when that class degrades 50%, phase by phase.
    if let Some(dom) = wi.dominant_hardware() {
        let _ = writeln!(md, "dominant hardware class: **{dom}**\n");
        let (slow, _) = record_run(&sc, SimParams::default().scaled(dom, 1.5))
            .map_err(|e| format!("{id}: scaled rerun: {e}"))?;
        match (PhaseProfile::build(&events), PhaseProfile::build(&slow)) {
            (Ok(base), Ok(cand)) => {
                let _ = writeln!(md, "### Differential critical path (nominal vs {dom} x1.5)\n");
                md.push_str(&DiffReport::between(&base, &cand).render_markdown());
            }
            (Err(e), _) | (_, Err(e)) => {
                let _ = writeln!(md, "(no critical path: {e})");
            }
        }
        let _ = md.write_char('\n');
    }

    let _ = writeln!(md, "### Phase latency histograms\n");
    md.push_str(&RunHistograms::build(&events).render_markdown());

    let flame = flamegraph_collapsed(&events, &sc.label);
    Ok((md, flame, wi))
}
