//! The conformance observatory: run every registered experiment (all
//! paper figures/tables plus the mesh heatmaps), emit the structured
//! `BENCH_figures.json` artifact and the human drift report
//! `results/CONFORMANCE.md`, and — when a baseline is supplied — gate
//! on drift: per-row tolerance bands plus shape-regression detection.
//!
//! ```text
//! cargo run --release -p scc-bench --bin observatory [--quick]
//!     [--only fig3,fig8a]      run a subset of the registry
//!     [--json PATH]            where to write BENCH_figures.json
//!     [--md PATH]              where to write CONFORMANCE.md
//!     [--heatmaps PATH]        where to write the heatmap text
//!     [--baseline PATH]        drift-gate against this baseline
//!     [--write-baseline PATH]  also write the fresh report here
//!     [--list]                 print registry ids and exit
//! ```
//!
//! Exit status: `1` if any shape check failed or the drift gate
//! tripped, `0` otherwise.

use scc_bench::{quick, registry, run_experiment};
use scc_obs::report::validate_json;
use scc_obs::{drift_gate, ConformanceReport};
use std::process::ExitCode;

struct Args {
    quick: bool,
    only: Option<Vec<String>>,
    json: String,
    md: String,
    heatmaps: String,
    baseline: Option<String>,
    write_baseline: Option<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: quick(),
        only: None,
        json: "BENCH_figures.json".to_string(),
        md: "results/CONFORMANCE.md".to_string(),
        heatmaps: "results/heatmaps.txt".to_string(),
        baseline: None,
        write_baseline: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--only" => {
                args.only =
                    Some(value("--only")?.split(',').map(|s| s.trim().to_string()).collect())
            }
            "--json" => args.json = value("--json")?,
            "--md" => args.md = value("--md")?,
            "--heatmaps" => args.heatmaps = value("--heatmaps")?,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            other => return Err(format!("unknown flag `{other}` (see --help in the doc comment)")),
        }
    }
    Ok(args)
}

/// Write `content`, creating parent directories as needed.
fn write_file(path: &str, content: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("observatory: {e}");
            return ExitCode::FAILURE;
        }
    };

    let reg = registry();
    if args.list {
        for e in &reg {
            println!("{:<12} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(only) = &args.only {
        for id in only {
            if !reg.iter().any(|e| e.id == id) {
                eprintln!("observatory: unknown experiment `{id}` (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut report = ConformanceReport::new(args.quick);
    let mut heatmap_text = None;
    for exp in &reg {
        if args.only.as_ref().is_some_and(|only| !only.iter().any(|id| id == exp.id)) {
            continue;
        }
        eprint!("observatory: running {:<12}", exp.id);
        let (exp_report, text) = run_experiment(exp, args.quick);
        eprintln!(
            " {} ({:.1}s, {} sim runs, {} rows, {} shapes)",
            if exp_report.shapes_pass() { "ok" } else { "SHAPE FAILURE" },
            exp_report.metrics.wall_s,
            exp_report.metrics.sim_runs,
            exp_report.rows.len(),
            exp_report.shapes.len(),
        );
        if exp.id == "heatmap" {
            heatmap_text = Some(text);
        }
        report.experiments.push(exp_report);
    }

    // Serialize, self-validate, and write the artifacts.
    let json = report.to_json().render();
    if let Err(e) = validate_json(&json) {
        eprintln!("observatory: BUG: emitted JSON does not validate: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_file(&args.json, &json) {
        eprintln!("observatory: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("observatory: wrote {}", args.json);
    if let Some(path) = &args.write_baseline {
        if let Err(e) = write_file(path, &json) {
            eprintln!("observatory: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("observatory: wrote baseline {path}");
    }
    if let Some(text) = &heatmap_text {
        if let Err(e) = write_file(&args.heatmaps, text) {
            eprintln!("observatory: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("observatory: wrote {}", args.heatmaps);
    }

    // The markdown drift report, with the gate verdict appended when a
    // baseline is available.
    let mut md = report.render_markdown();
    let mut failed = !report.shapes_pass();
    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|s| {
            ConformanceReport::from_json(&s).map_err(|e| format!("unparseable baseline: {e}"))
        }) {
            Ok(baseline) => {
                let gate = drift_gate(&report, &baseline);
                md.push_str("\n## Drift gate\n\n");
                md.push_str(&format!("Baseline: `{path}`\n\n"));
                md.push_str(&gate.render());
                eprint!("{}", gate.render());
                failed |= !gate.ok();
            }
            Err(e) => {
                eprintln!("observatory: {e}");
                failed = true;
            }
        }
    }
    if let Err(e) = write_file(&args.md, &md) {
        eprintln!("observatory: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("observatory: wrote {}", args.md);

    if failed {
        eprintln!("observatory: FAILED (shape check or drift gate)");
        ExitCode::FAILURE
    } else {
        eprintln!("observatory: all experiments conform");
        ExitCode::SUCCESS
    }
}
