//! Figure 4: MPB contention — (a) average and per-core spread of the
//! completion time of concurrent 128-cache-line gets from core 0's
//! MPB, (b) the same for concurrent 1-cache-line puts, as the number
//! of concurrent accessors grows.
//!
//! Thin wrapper over the `fig4` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run --release -p scc-bench --bin fig4`

fn main() {
    scc_bench::run_standalone("fig4");
}
