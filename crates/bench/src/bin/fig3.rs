//! Figure 3: put/get completion time as a function of router distance
//! for 1/4/8/16 cache lines — measurement dots (simulator) vs model
//! lines (Formulas 7–12 with Table-1 parameters), four panels.
//!
//! Thin wrapper over the `fig3` entry of the experiment registry
//! (`scc_bench::experiments`); the `observatory` binary runs the same
//! code with structured conformance output.
//!
//! Run: `cargo run --release -p scc-bench --bin fig3`

fn main() {
    scc_bench::run_standalone("fig3");
}
