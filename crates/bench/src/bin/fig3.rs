//! Figure 3: put/get completion time as a function of router distance
//! for 1/4/8/16 cache lines — measurement dots (simulator) vs model
//! lines (Formulas 7–12 with Table-1 parameters), four panels.
//!
//! Run: `cargo run --release -p scc-bench --bin fig3`

use scc_bench::{paper_chip, print_series};
use scc_model::{ModelParams, P2p};
use scc_sim::{measure_p2p, P2pKind};

fn main() {
    let cfg = paper_chip();
    let model = P2p::new(ModelParams::paper());
    let sizes = [1usize, 4, 8, 16];
    let reps = 3;

    let panels: [(&str, P2pKind, u32); 4] = [
        ("MPB to MPB Get Completion Time", P2pKind::GetMpb, 9),
        ("MPB to MPB Put Completion Time", P2pKind::PutMpb, 9),
        ("MPB to Memory Get Completion Time", P2pKind::GetMem, 4),
        ("Memory to MPB Put Completion Time", P2pKind::PutMem, 4),
    ];

    for (title, kind, dmax) in panels {
        let labels: Vec<String> =
            sizes.iter().flat_map(|m| [format!("exp:{m}CL"), format!("model:{m}CL")]).collect();
        let mut rows = Vec::new();
        for d in 1..=dmax {
            let mut cols = Vec::new();
            for &m in &sizes {
                let exp = measure_p2p(&cfg, kind, m, d, reps).expect("sim").as_us_f64();
                let mdl = match kind {
                    P2pKind::GetMpb => model.c_get_mpb(m, d),
                    P2pKind::PutMpb => model.c_put_mpb(m, d),
                    P2pKind::GetMem => model.c_get_mem(m, 1, d),
                    P2pKind::PutMem => model.c_put_mem(m, d, 1),
                };
                cols.push(exp);
                cols.push(mdl);
            }
            rows.push((d as usize, cols));
        }
        print_series(title, "hops", &labels, &rows);

        // The paper's validation claim: model and measurement agree.
        for (d, cols) in &rows {
            for pair in cols.chunks_exact(2) {
                let rel = (pair[0] - pair[1]).abs() / pair[1];
                assert!(
                    rel < 0.02,
                    "model mismatch at d={d}: exp {} vs model {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }
    println!("# all panels: simulator within 2% of the analytical model");
}
