//! Figure 6: *analytically modeled* broadcast latency vs message size
//! for OC-Bcast (k = 2, 7, 47) and the binomial tree at P = 48 —
//! panel (a) up to 180 cache lines, panel (b) the ≤ 30-line zoom.
//!
//! Run: `cargo run -p scc-bench --bin fig6`

use scc_bench::print_series;
use scc_model::bcast::FullModelCfg;
use scc_model::series::fig6_curves;
use scc_model::ModelParams;

fn main() {
    let params = ModelParams::paper();
    let cfg = FullModelCfg::default();
    let ks = [2usize, 7, 47];

    for (title, sizes) in [
        (
            "Figure 6a — modeled broadcast latency (µs), P = 48",
            (1..=180).step_by(4).collect::<Vec<usize>>(),
        ),
        ("Figure 6b — zoom on small messages", (1..=30).collect::<Vec<usize>>()),
    ] {
        let curves = fig6_curves(&params, &cfg, 48, &ks, &sizes);
        let labels: Vec<String> = curves.iter().map(|c| c.label.clone()).collect();
        let rows: Vec<(usize, Vec<f64>)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, curves.iter().map(|c| c.points[i].1).collect()))
            .collect();
        print_series(title, "cache_lines", &labels, &rows);
    }

    // The qualitative claims of Section 5.2.
    let l = |m: usize, k: usize| scc_model::oc_latency_full(&params, &cfg, 48, m, k);
    let binom = |m: usize| scc_model::binomial_latency_full(&params, &cfg, 48, m);
    assert!(l(1, 7) < binom(1), "OC-Bcast must beat binomial at 1 CL");
    assert!(l(1, 47) > l(1, 7), "k = 47 pays the polling cost at 1 CL");
    assert!(binom(180) - l(180, 7) > binom(1) - l(1, 7), "the gap grows with message size");
    println!("# Section 5.2 ordering claims hold for the modeled curves");
}
