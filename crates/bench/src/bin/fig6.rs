//! Figure 6: *analytically modeled* broadcast latency vs message size
//! for OC-Bcast (k = 2, 7, 47) and the binomial tree at P = 48 —
//! panel (a) up to 180 cache lines, panel (b) the ≤ 30-line zoom.
//!
//! Thin wrapper over the `fig6` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run -p scc-bench --bin fig6`

fn main() {
    scc_bench::run_standalone("fig6");
}
