//! Causal trace audit: re-record the representative protocol runs
//! (plain, reliable, faulted × k=47/k=7/binomial on the full chip),
//! check them against the happens-before invariants, and prove the
//! checkers non-vacuous with the seeded mutation matrix.
//!
//! Thin wrapper over the `audit` entry of the experiment registry
//! (`scc_bench::experiments`); the `observatory` binary runs the same
//! code with structured conformance output and, under `--audit`, also
//! writes `BENCH_audit.json` and `results/AUDIT.md`.
//!
//! Run: `cargo run --release -p scc-bench --bin audit`

fn main() {
    scc_bench::run_standalone("audit");
}
