//! Table 1: recover the eight model parameters from microbenchmarks on
//! the simulated chip and compare with the values the authors measured
//! on real silicon.
//!
//! Thin wrapper over the `table1` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run --release -p scc-bench --bin table1`

fn main() {
    scc_bench::run_standalone("table1");
}
