//! Section 3.3's mesh-contention experiment: load the (2,2)–(3,2) link
//! with traffic from every other core and measure whether a probe get
//! across that link slows down. The paper found no measurable drop —
//! "at the current scale, the network cannot be a source of
//! contention."
//!
//! Run: `cargo run --release -p scc-bench --bin linkstress`

use scc_bench::paper_chip;
use scc_sim::measure_link_stress;

fn main() {
    let cfg = paper_chip();
    for lines in [16usize, 128] {
        let (loaded, idle) = measure_link_stress(&cfg, lines, 3).expect("sim");
        let ratio = loaded.as_us_f64() / idle.as_us_f64();
        println!(
            "{lines:>4} CL probe: idle {:>8.3} µs, loaded {:>8.3} µs, ratio {ratio:.4}",
            idle.as_us_f64(),
            loaded.as_us_f64()
        );
        assert!(ratio < 1.05, "mesh must not contend under core-driven load (got {ratio:.3})");
    }
    println!("# no measurable mesh contention — matches Section 3.3");
}
