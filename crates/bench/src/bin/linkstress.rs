//! Section 3.3's mesh-contention experiment: load the (2,2)–(3,2) link
//! with traffic from every other core and measure whether a probe get
//! across that link slows down. The paper found no measurable drop —
//! "at the current scale, the network cannot be a source of
//! contention."
//!
//! Thin wrapper over the `linkstress` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run --release -p scc-bench --bin linkstress`

fn main() {
    scc_bench::run_standalone("linkstress");
}
