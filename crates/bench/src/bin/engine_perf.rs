//! Engine self-benchmark: how fast the simulator itself retires events,
//! measured on (a) a raw op-throughput loop and (b) a Figure-8b-like
//! OC-Bcast size sweep at P = 48. This measures the host-side DES
//! engine — event coalescing, pooled core threads, slot handoffs — not
//! the simulated SCC, whose virtual-time results are identical whatever
//! the engine speed.
//!
//! Run: `cargo run --release -p scc-bench --bin engine_perf`
//! (SCC_BENCH_QUICK=1 shrinks the sweep; the JSON lands in
//! `BENCH_engine.json` in the working directory.)

use oc_bcast::{Algorithm, Broadcaster};
use scc_bench::{engine_artifact, quick, EngineSample};
use scc_hal::{CoreId, MemRange, MpbAddr, Rma, RmaResult};
use scc_rcce::MpbAllocator;
use scc_sim::{handoff, run_spmd, SimConfig, SimStats};
use std::time::Instant;

/// Time one full `run_spmd` with the given workload.
fn timed<F>(cfg: &SimConfig, label: &str, reps: u32, f: F) -> EngineSample
where
    F: Fn(&mut scc_sim::SimCore) -> RmaResult<()> + Send + Sync,
{
    // One untimed warmup run pays the worker-pool spawn cost.
    run_spmd(cfg, &f).expect("warmup");
    let t0 = Instant::now();
    let mut stats = SimStats::default();
    for _ in 0..reps {
        let rep = run_spmd(cfg, &f).expect("run");
        stats = rep.stats; // identical every rep (deterministic engine)
    }
    let wall_s = t0.elapsed().as_secs_f64() / reps as f64;
    EngineSample { label: label.into(), wall_s, stats }
}

/// Fixed per-run cost at P = 48: worker dispatch, chip construction,
/// start grants, teardown — no ops at all.
fn null_run(reps: u32) -> EngineSample {
    let cfg = SimConfig { num_cores: 48, mem_bytes: 4096, ..SimConfig::default() };
    timed(&cfg, "null_p48", reps, |_| Ok(()))
}

fn raw_ops(reps: u32) -> EngineSample {
    let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
    let ops = 10_000usize;
    timed(&cfg, "raw_one_line_puts_10k", reps, move |core| {
        if core.core().index() == 0 {
            for _ in 0..ops {
                core.put_from_mpb(0, MpbAddr::new(CoreId(1), 0), 1)?;
            }
        }
        Ok(())
    })
}

fn bcast_point(lines: usize, reps: u32) -> EngineSample {
    // 256 KB of private memory per core is plenty for the largest
    // sweep point (4608 lines = 144 KB) and keeps chip construction
    // out of the measurement.
    let cfg = SimConfig { num_cores: 48, mem_bytes: 1 << 18, ..SimConfig::default() };
    let bytes = lines * 32;
    timed(&cfg, &format!("oc_k7_p48_{lines}CL"), reps, move |core| {
        let mut alloc = MpbAllocator::new();
        let mut bc = Broadcaster::new(&mut alloc, Algorithm::oc_with_k(7), 48).expect("ctx");
        if core.core().index() == 0 {
            let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
            core.mem_write(0, &payload)?;
        }
        bc.bcast(core, CoreId(0), MemRange::new(0, bytes))
    })
}

fn main() {
    let (sizes, reps): (Vec<usize>, u32) =
        if quick() { (vec![1, 96, 768], 1) } else { (vec![1, 16, 96, 97, 768, 4608], 3) };

    let mut samples = vec![null_run(reps), raw_ops(reps)];
    for &m in &sizes {
        samples.push(bcast_point(m, reps));
    }

    println!("# engine_perf — host-side DES engine throughput");
    println!(
        "# {:<24} {:>10} {:>12} {:>14} {:>10} {:>10}",
        "workload", "wall ms", "events", "events/s", "coalesced", "handoffs"
    );
    for s in &samples {
        println!(
            "{:<26} {:>10.3} {:>12} {:>14.0} {:>10} {:>10}",
            s.label,
            s.wall_s * 1e3,
            s.stats.events,
            s.events_per_sec(),
            s.stats.coalesced_steps,
            s.stats.handoffs
        );
    }

    let total_wall: f64 = samples.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = samples.iter().map(|s| s.stats.events).sum();
    let pool = handoff::pool_stats();
    println!(
        "# total: {:.1} ms for {} events ({:.0} events/s); {} worker threads spawned",
        total_wall * 1e3,
        total_events,
        total_events as f64 / total_wall,
        pool.spawned
    );
    println!(
        "# pool: {} leases served from the free list, {} retired over cap, peak {} pooled (cap {})",
        pool.reused, pool.retired, pool.peak_pooled, pool.cap
    );

    let out = engine_artifact(quick(), reps, &samples, &pool);
    std::fs::write("BENCH_engine.json", &out).expect("write BENCH_engine.json");
    println!("# wrote BENCH_engine.json");
}
