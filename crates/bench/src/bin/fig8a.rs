//! Figure 8a: *measured* broadcast latency vs message size on the
//! 48-core chip — OC-Bcast (k = 2, 7, 47) against the RCCE_comm
//! binomial tree, sizes up to 2·M_oc = 192 cache lines.
//!
//! Run: `cargo run --release -p scc-bench --bin fig8a`

use oc_bcast::Algorithm;
use scc_bench::{paper_algorithms, paper_chip, print_series, quick, sweep_sizes};

fn main() {
    let cfg = paper_chip();
    let sizes: Vec<usize> = if quick() {
        vec![1, 32, 96, 192]
    } else {
        vec![1, 8, 16, 32, 48, 64, 80, 96, 97, 112, 128, 144, 160, 176, 192]
    };
    let algs = paper_algorithms(Algorithm::Binomial);
    let (warmup, reps) = (1, 3);

    let labels: Vec<String> = algs.iter().map(|a| a.label()).collect();
    let mut columns = Vec::new();
    for &alg in &algs {
        let series = sweep_sizes(&cfg, alg, &sizes, warmup, reps).expect("sim");
        columns.push(series);
    }
    let rows: Vec<(usize, Vec<f64>)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &m)| (m, columns.iter().map(|c| c[i].1.latency_us).collect()))
        .collect();
    print_series(
        "Figure 8a — measured broadcast latency (µs), P = 48",
        "cache_lines",
        &labels,
        &rows,
    );

    // Section 6.2.1 claims.
    let col = |label: &str| labels.iter().position(|l| l == label).expect("column");
    let at = |m: usize, label: &str| rows.iter().find(|r| r.0 == m).expect("row").1[col(label)];
    let improvement = 1.0 - at(1, "k=7") / at(1, "binomial");
    println!(
        "# 1-CL latency: k=7 {:.2} µs vs binomial {:.2} µs — {:.0}% improvement (paper: ≥27%)",
        at(1, "k=7"),
        at(1, "binomial"),
        improvement * 100.0
    );
    assert!(improvement >= 0.27, "headline latency improvement must hold");
    if !quick() {
        let k7_gain_over_k2 = 1.0 - at(144, "k=7") / at(144, "k=2");
        println!(
            "# 96–192 CL: k=7 is {:.0}% better than k=2 (paper: ~25%)",
            k7_gain_over_k2 * 100.0
        );
        assert!(k7_gain_over_k2 > 0.10);
        // The gap to binomial grows with size.
        let gap1 = at(1, "binomial") - at(1, "k=7");
        let gap192 = at(192, "binomial") - at(192, "k=7");
        assert!(gap192 > gap1, "gap must grow with message size");
    }
}
