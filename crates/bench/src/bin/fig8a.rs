//! Figure 8a: *measured* broadcast latency vs message size on the
//! 48-core chip — OC-Bcast (k = 2, 7, 47) against the RCCE_comm
//! binomial tree, sizes up to 2·M_oc = 192 cache lines.
//!
//! Thin wrapper over the `fig8a` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run --release -p scc-bench --bin fig8a`

fn main() {
    scc_bench::run_standalone("fig8a");
}
