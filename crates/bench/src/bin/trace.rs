//! Record one broadcast and emit every observability artifact at once:
//!
//! * a text Gantt + per-core op summary on stdout (the quick look that
//!   used to be the `gantt` binary);
//! * `results/trace_<label>.json` — Chrome trace_event JSON, loadable
//!   in Perfetto (`ui.perfetto.dev`): one track per core with ops,
//!   parked intervals and protocol-phase spans, plus one track per
//!   contended resource;
//! * `results/util_<label>.csv` — bucketed busy-fraction / queue-depth
//!   time series per contended resource;
//! * a critical-path report on stdout (latency attributed to op
//!   service, port/router/MC queueing, compute and idle), with the
//!   invariant `sum(segments) == makespan` asserted;
//! * `BENCH_obs.json` — the machine-readable roll-up CI checks.
//!
//! Run: `cargo run --release -p scc-bench --bin trace -- \
//!        --collective ocbcast --lines 96 [--cores 48] [--k 7] \
//!        [--buckets 60] [--width 100] [--out results]`

use oc_bcast::{Algorithm, Broadcaster, OcConfig};
use scc_hal::{CoreId, MemRange, Rma, RmaResult, Time};
use scc_obs::{
    chrome_trace_json, critical_path, flamegraph_collapsed, validate_json, Json, ObsEvent,
    UtilizationSeries, ARTIFACT_VERSION,
};
use scc_rcce::MpbAllocator;
use scc_sim::{render_gantt, run_spmd, summarize, SimConfig};

struct Opts {
    collective: String,
    lines: usize,
    cores: usize,
    k: usize,
    buckets: usize,
    width: usize,
    out: String,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        collective: "ocbcast".into(),
        lines: 96,
        cores: 48,
        k: 7,
        buckets: 60,
        width: 100,
        out: "results".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--collective" => o.collective = val(),
            "--lines" => o.lines = parse_num(&flag, &val()),
            "--cores" => o.cores = parse_num(&flag, &val()),
            "--k" => o.k = parse_num(&flag, &val()),
            "--buckets" => o.buckets = parse_num(&flag, &val()),
            "--width" => o.width = parse_num(&flag, &val()),
            "--out" => o.out = val(),
            _ => die(&format!("unknown flag {flag} (see the doc comment for usage)")),
        }
    }
    if !(1..=48).contains(&o.cores) {
        die("--cores must be in 1..=48");
    }
    o
}

fn parse_num(flag: &str, s: &str) -> usize {
    s.parse().unwrap_or_else(|_| die(&format!("{flag}: bad number {s:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("trace: {msg}");
    std::process::exit(2);
}

/// Write an artifact, exiting nonzero with the path and OS error on
/// failure (a missing results dir or a read-only checkout must not
/// surface as a panic backtrace).
fn write_artifact(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
}

fn algorithm(o: &Opts) -> Algorithm {
    match o.collective.as_str() {
        "ocbcast" => Algorithm::OcBcast(OcConfig::with_k(o.k)),
        "binomial" => Algorithm::Binomial,
        "sag" => Algorithm::ScatterAllgather,
        "rma-sag" => Algorithm::RmaScatterAllgather,
        other => die(&format!("unknown collective {other:?} (ocbcast | binomial | sag | rma-sag)")),
    }
}

fn main() {
    let o = parse_opts();
    let alg = algorithm(&o);
    let p = o.cores;
    let bytes = o.lines * 32;
    let label = format!("{}_{}cl", o.collective, o.lines);

    let cfg = SimConfig {
        num_cores: p,
        mem_bytes: (bytes.next_power_of_two()).max(1 << 20),
        trace: true,
        record: true,
        ..SimConfig::default()
    };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, alg, p).expect("MPB layout fits");
        let r = MemRange::new(0, bytes);
        if c.core().index() == 0 {
            let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
            c.mem_write(0, &payload)?;
        }
        b.bcast(c, CoreId(0), r)
    })
    .expect("simulation");
    for r in &rep.results {
        r.as_ref().expect("core ok");
    }
    let events = rep.events.as_deref().expect("recording enabled");

    // ---- quick look: Gantt + per-core summary --------------------------
    println!("{} — {} cache lines, P={p}, one broadcast\n", alg.label(), o.lines);
    let trace = rep.trace.as_deref().expect("trace enabled");
    print!("{}", render_gantt(trace, p, o.width));
    println!();
    let summary = summarize(trace, p);
    println!("{:>4} {:>6} {:>7} {:>12} {:>12}", "core", "ops", "lines", "busy", "polling");
    for (i, s) in summary.per_core.iter().enumerate() {
        println!(
            "{:>4} {:>6} {:>7} {:>12} {:>12}",
            format!("C{i}"),
            s.ops,
            s.lines,
            s.busy.to_string(),
            s.polling.to_string()
        );
    }
    println!();
    let span = rep.makespan.as_ns_f64();
    println!("makespan: {}  ({} events recorded)", rep.makespan, events.len());
    println!(
        "utilization — MPB ports: {:.1}%  routers: {:.2}%  memory controllers: {:.1}%",
        rep.stats.port_busy.as_ns_f64() / (span * 24.0) * 100.0,
        rep.stats.router_busy.as_ns_f64() / (span * 24.0) * 100.0,
        rep.stats.mc_busy.as_ns_f64() / (span * 4.0) * 100.0,
    );

    // ---- critical path -------------------------------------------------
    let cp = critical_path(events).expect("non-empty event stream");
    println!();
    print!("{}", cp.render());
    let b = cp.breakdown();
    assert_eq!(b.total(), cp.total(), "critical-path segments must sum exactly to the path length");
    assert_eq!(
        cp.total(),
        rep.makespan,
        "critical path must cover the whole broadcast: {} vs {}",
        cp.total(),
        rep.makespan
    );

    // ---- artifacts -----------------------------------------------------
    std::fs::create_dir_all(&o.out)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", o.out)));
    let chrome = chrome_trace_json(events);
    validate_json(&chrome).expect("chrome trace JSON is valid");
    let trace_path = format!("{}/trace_{label}.json", o.out);
    write_artifact(&trace_path, &chrome);

    let series = UtilizationSeries::build(events, rep.makespan, o.buckets);
    let csv_path = format!("{}/util_{label}.csv", o.out);
    write_artifact(&csv_path, &series.to_csv());

    let flame = flamegraph_collapsed(events, &label);
    let flame_path = format!("{}/flame_{label}.txt", o.out);
    write_artifact(&flame_path, &flame);

    let us = |t: Time| Json::Num(t.as_us_f64());
    let mut peak = Json::obj();
    for (class, frac) in series.peak_busy() {
        peak = peak.set(class, Json::Num(frac));
    }
    let bench = Json::obj()
        .set("version", Json::Int(ARTIFACT_VERSION))
        .set("bench", Json::Str("trace".into()))
        .set("collective", Json::Str(o.collective.clone()))
        .set("label", Json::Str(alg.label()))
        .set("cores", Json::Int(p as i64))
        .set("lines", Json::Int(o.lines as i64))
        .set("makespan_us", us(rep.makespan))
        .set("events", Json::Int(events.len() as i64))
        .set("spans", Json::Int(count_spans(events) as i64))
        .set(
            "critical_path",
            Json::obj()
                .set("segments", Json::Int(cp.segments.len() as i64))
                .set("total_us", us(cp.total()))
                .set("op_service_us", us(b.op_service))
                .set("port_wait_us", us(b.port_wait))
                .set("router_wait_us", us(b.router_wait))
                .set("mc_wait_us", us(b.mc_wait))
                .set("compute_us", us(b.compute))
                .set("idle_us", us(b.idle)),
        )
        .set("peak_busy", peak)
        .set(
            "artifacts",
            Json::Arr(vec![
                Json::Str(trace_path.clone()),
                Json::Str(csv_path.clone()),
                Json::Str(flame_path.clone()),
            ]),
        );
    let rendered = bench.render();
    validate_json(&rendered).expect("BENCH_obs.json is valid");
    write_artifact("BENCH_obs.json", &(rendered + "\n"));

    println!();
    println!("# wrote {trace_path} (open in ui.perfetto.dev)");
    println!("# wrote {csv_path}");
    println!("# wrote {flame_path} (collapsed stacks for inferno/speedscope)");
    println!("# wrote BENCH_obs.json");
}

fn count_spans(events: &[ObsEvent]) -> usize {
    events.iter().filter(|e| matches!(e, ObsEvent::SpanBegin { .. })).count()
}
