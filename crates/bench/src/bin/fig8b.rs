//! Figure 8b: *measured* broadcast throughput vs message size
//! (logarithmic x, 1 … 32768 cache lines = 1 MiB) — OC-Bcast
//! (k = 2, 7, 47) against the RCCE_comm scatter-allgather.
//!
//! Thin wrapper over the `fig8b` registry entry; see
//! `scc_bench::experiments`.
//!
//! Run: `cargo run --release -p scc-bench --bin fig8b`
//! (Set SCC_BENCH_QUICK=1 for a fast, shrunken sweep.)

fn main() {
    scc_bench::run_standalone("fig8b");
}
