//! The harness-side work pool: a fixed set of scoped host threads
//! draining a cost-ordered task queue.
//!
//! This is the engine behind the observatory's `--jobs N` fan-out. It
//! is deliberately *not* the simulator's core-thread pool
//! (`scc_sim::handoff`) — that one parks one thread per simulated core
//! inside a single run; this one schedules whole *sweep units* (each of
//! which may launch many simulations) across the host's cores. Results
//! come back in submission order, so callers can merge deterministically
//! no matter how execution interleaved.
//!
//! Scheduling is longest-task-first: tasks are drained in descending
//! `cost` order (ties keep submission order) from a shared atomic
//! cursor. With units of wildly different weight — a 32768-line fig8b
//! point next to a one-line fig5 print — LPT ordering keeps the tail of
//! the schedule short without any work stealing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Boxed body of a [`Task`].
pub type TaskFn<T> = Box<dyn FnOnce() -> T + Send>;

/// One schedulable unit of harness work.
pub struct Task<T> {
    /// Relative weight used for longest-task-first ordering; any
    /// monotone proxy for runtime works (e.g. message size in lines).
    pub cost: u64,
    pub run: TaskFn<T>,
}

/// The default worker count: `SCC_JOBS` when set to a positive integer,
/// otherwise the host's available parallelism.
pub fn jobs_default() -> usize {
    std::env::var("SCC_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Parse `--jobs N` out of a raw argument list (the thin wrapper
/// binaries accept nothing else), falling back to [`jobs_default`].
pub fn jobs_from_args<I: Iterator<Item = String>>(mut args: I) -> usize {
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                if n >= 1 {
                    return n;
                }
            }
        } else if let Some(n) = a.strip_prefix("--jobs=").and_then(|v| v.parse::<usize>().ok()) {
            if n >= 1 {
                return n;
            }
        }
    }
    jobs_default()
}

/// Run every task and return their results in submission order.
///
/// `jobs <= 1` (or a single task) executes inline on the calling
/// thread, in submission order — the exact legacy sequential path, no
/// threads involved. Otherwise `min(jobs, tasks)` scoped threads drain
/// the queue longest-first. A panicking task propagates when the scope
/// joins (after in-flight tasks finish).
pub fn run_tasks<T: Send>(jobs: usize, tasks: Vec<Task<T>>) -> Vec<T> {
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|t| (t.run)()).collect();
    }

    // LPT order: indices by descending cost; sort_by is stable, so
    // equal-cost tasks keep submission order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| tasks[b].cost.cmp(&tasks[a].cost));

    let queue: Vec<Mutex<Option<TaskFn<T>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t.run))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let at = cursor.fetch_add(1, Ordering::Relaxed);
                if at >= n {
                    break;
                }
                let idx = order[at];
                let task = queue[idx]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each queue slot is taken exactly once");
                let out = task();
                *results[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every task ran (a panic would have propagated from the scope)")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks_squaring(n: usize) -> Vec<Task<usize>> {
        (0..n).map(|i| Task { cost: (i % 5) as u64, run: Box::new(move || i * i) }).collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for jobs in [1, 2, 4, 9] {
            let out = run_tasks(jobs, tasks_squaring(23));
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_task_lists_work() {
        assert_eq!(run_tasks::<usize>(4, Vec::new()), Vec::<usize>::new());
        let one = vec![Task { cost: 1, run: Box::new(|| 41 + 1) }];
        assert_eq!(run_tasks(4, one), vec![42]);
    }

    #[test]
    fn parallel_run_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::thread::ThreadId;
        let tasks: Vec<Task<ThreadId>> = (0..64)
            .map(|_| {
                Task {
                    cost: 1,
                    run: Box::new(|| {
                        // Give other workers a chance to grab tasks too.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        std::thread::current().id()
                    }),
                }
            })
            .collect();
        let seen: HashSet<ThreadId> = run_tasks(4, tasks).into_iter().collect();
        assert!(seen.len() > 1, "expected >1 worker thread, saw {}", seen.len());
        assert!(!seen.contains(&std::thread::current().id()), "jobs>1 must not run inline");
    }

    #[test]
    fn jobs_args_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter();
        assert_eq!(jobs_from_args(args(&["--jobs", "3"])), 3);
        assert_eq!(jobs_from_args(args(&["--jobs=7"])), 7);
        // Invalid values fall back to the default (≥ 1 either way).
        assert!(jobs_from_args(args(&["--jobs", "zero"])) >= 1);
        assert!(jobs_from_args(args(&[])) >= 1);
    }
}
