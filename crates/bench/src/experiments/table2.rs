//! Table 2: modeled peak broadcast throughput (MB/s) for OC-Bcast
//! (k = 2, 7, 47) vs the two-sided scatter-allgather, both from the
//! simplified Formulas (15)/(16) and from the complete model.

use super::{outln, ExpCtx, Sweep};
use scc_model::bcast::FullModelCfg;
use scc_model::series::table2_rows;
use scc_model::{oc_throughput_simplified, sag_throughput_simplified, ModelParams};

pub(super) fn plan(sweep: &mut Sweep) {
    // Model-only (no simulator in the loop) — one unit.
    sweep.unit("table", run);
}

fn run(ctx: &mut ExpCtx) {
    let params = ModelParams::paper();
    let cfg = FullModelCfg::default();
    let rows = table2_rows(&params, &cfg, 48, &[2, 7, 47]).expect("static sweep");

    // The numbers printed in the paper's Table 2.
    let paper: [(&str, f64); 4] = [
        ("OC-Bcast, k=2", 35.22),
        ("OC-Bcast, k=7", 34.30),
        ("OC-Bcast, k=47", 35.88),
        ("scatter-allgather", 13.38),
    ];

    outln!(ctx, "# Table 2 — analytical peak throughput (MB/s), P = 48, M_oc = 96 CL");
    outln!(ctx, "{:<20} {:>10} {:>10}", "algorithm", "model", "paper");
    let mut labels_match = true;
    for ((label, ours), (plabel, theirs)) in rows.iter().zip(paper) {
        labels_match &= label == plabel;
        outln!(ctx, "{label:<20} {ours:>10.2} {theirs:>10.2}");
        ctx.row(label.clone(), Some(theirs), Some(*ours), *ours, 0.01, "MB/s");
    }
    ctx.shape(
        "the model sweep produces exactly the paper's four Table-2 rows",
        labels_match && rows.len() == paper.len(),
        format!("{} rows", rows.len()),
    );
    outln!(ctx);
    outln!(
        ctx,
        "# simplified Formula (15): {:.2} MB/s (k-independent)",
        oc_throughput_simplified(&params, 96)
    );
    outln!(
        ctx,
        "# simplified Formula (16): {:.2} MB/s",
        sag_throughput_simplified(&params, 48, 96)
    );
    ctx.row(
        "simplified (15)",
        None,
        Some(oc_throughput_simplified(&params, 96)),
        oc_throughput_simplified(&params, 96),
        0.01,
        "MB/s",
    );
    ctx.row(
        "simplified (16)",
        None,
        Some(sag_throughput_simplified(&params, 48, 96)),
        sag_throughput_simplified(&params, 48, 96),
        0.01,
        "MB/s",
    );

    let sag = rows.last().expect("rows").1;
    let ratio = rows[1].1 / sag;
    outln!(
        ctx,
        "# OC-Bcast (k=7) / scatter-allgather = {ratio:.2}x (paper: ~2.6x, \"almost 3 times\")"
    );
    ctx.shape(
        "the almost-3x headline holds for the modeled peak",
        ratio > 2.3,
        format!("OC-Bcast (k=7) / scatter-allgather = {ratio:.2}x"),
    );
}
