//! Causal what-if profiles: which cost class is each protocol actually
//! bound by?
//!
//! Coz-style causal profiling against the simulator's cost model: rerun
//! a scenario with one [`CostClass`] virtually scaled (±10%) and read
//! the makespan sensitivity off the reruns. The paper's two headline
//! characterizations become checkable shape claims:
//!
//! * OC-Bcast with a flat tree (k=47) at a large message is
//!   **port-bound** — 47 getters hammer the root's MPB port, so the
//!   port service time dominates every other hardware class
//!   (Section 5's contention model, Figure 4a's knee);
//! * the binomial-tree baseline at one cache line is **latency-bound**
//!   — nothing saturates, so among hardware classes the per-hop mesh
//!   latency `L_hop` dominates, while overall the per-message software
//!   overhead `o` dominates everything (the LogP structure of
//!   Section 4.4's baseline analysis).
//!
//! The structured side lands in `BENCH_whatif.json` (versioned with
//! [`scc_obs::ARTIFACT_VERSION`]) through the experiment's artifact
//! channel, so `observatory` writes it next to `BENCH_figures.json`.

use super::{outln, Sweep};
use crate::{measure_scenario, Scenario};
use oc_bcast::Algorithm;
use scc_hal::Time;
use scc_obs::{validate_json, CostClass, Json, WhatIfPoint, WhatIfProfile, ARTIFACT_VERSION};
use scc_sim::SimParams;

/// The two extremes the paper contrasts.
fn scenarios() -> [Scenario; 2] {
    [Scenario::new(Algorithm::oc_with_k(47), 48, 96), Scenario::new(Algorithm::Binomial, 48, 1)]
}

/// Scale factors per class: a symmetric pair in full mode (averaging
/// +10% and −10% points cancels boundary effects), the cheap single
/// +10% point in quick mode.
fn factors(quick: bool) -> &'static [f64] {
    if quick {
        &[1.1]
    } else {
        &[0.9, 1.1]
    }
}

/// Wrap profiles in the versioned `BENCH_whatif.json` envelope.
pub fn whatif_artifact(profiles: &[WhatIfProfile], quick: bool) -> String {
    let doc = Json::obj()
        .set("version", Json::Int(ARTIFACT_VERSION))
        .set("bench", Json::Str("whatif".into()))
        .set("quick", Json::Bool(quick))
        .set("profiles", Json::Arr(profiles.iter().map(WhatIfProfile::to_json).collect()));
    let rendered = doc.render();
    validate_json(&rendered).expect("BENCH_whatif.json must validate");
    rendered + "\n"
}

pub(super) fn plan(sweep: &mut Sweep) {
    let fs = factors(sweep.quick);
    // The what-if scan decomposes naturally: one unit for each
    // scenario's nominal run, one per (scenario, cost class) for that
    // class's scaled reruns. Profiles reassemble in finalize with the
    // points in `CostClass::ALL` order — exactly what
    // `crate::whatif_profile` produces sequentially.
    for sc in scenarios() {
        let nominal_sc = sc.clone();
        sweep.value_unit_w(format!("{} nominal", sc.label), sc.lines as u64, move |_| {
            measure_scenario(&nominal_sc, SimParams::default()).expect("what-if scan")
        });
        for class in CostClass::ALL {
            let class_sc = sc.clone();
            sweep.value_unit_w(
                format!("{} scale {}", sc.label, class.name()),
                sc.lines as u64 * fs.len() as u64,
                move |_| {
                    let base = SimParams::default();
                    fs.iter()
                        .map(|&factor| {
                            let makespan = measure_scenario(&class_sc, base.scaled(class, factor))
                                .expect("what-if scan");
                            WhatIfPoint { class, factor, makespan }
                        })
                        .collect::<Vec<WhatIfPoint>>()
                },
            );
        }
    }

    sweep.finalize(move |ctx, mut values| {
        let mut profiles = Vec::new();
        for sc in scenarios() {
            let nominal = values.next_as::<Time>();
            let mut points = Vec::new();
            for _ in CostClass::ALL {
                points.extend(values.next_as::<Vec<WhatIfPoint>>());
            }
            let p = WhatIfProfile { scenario: sc.label.clone(), nominal, points };
            outln!(ctx, "{}", p.render_markdown());
            for class in CostClass::ALL {
                let s = p.sensitivity(class).expect("all classes swept");
                // Sensitivities are exact on the deterministic simulator;
                // the band exists to absorb deliberate cost-model retunes
                // on classes that barely matter (absolute movement of a
                // near-zero sensitivity is what we care about, so the band
                // is generous for small values via the gate's max(|old|,
                // 1e-9) scale — a 0.35 dominating sensitivity still may not
                // move 25% without tripping).
                ctx.row(
                    format!("{} sens {}", sc.label, class.name()),
                    None,
                    None,
                    s,
                    0.25,
                    "dM/dc",
                );
            }
            profiles.push(p);
        }

        let [oc, binomial] = &profiles[..] else { unreachable!("two scenarios") };

        let sens = |p: &WhatIfProfile, c: CostClass| p.sensitivity(c).unwrap_or(0.0);
        let oc_port = sens(oc, CostClass::PortService);
        let oc_hop = sens(oc, CostClass::RouterHop);
        ctx.shape(
            "flat-tree OC-Bcast 96CL is port-bound",
            oc.dominant_hardware() == Some(CostClass::PortService) && oc_port > 2.0 * oc_hop,
            format!(
                "hardware sensitivities: port {oc_port:.3} vs hop {oc_hop:.3} (dominant: {:?})",
                oc.dominant_hardware().map(CostClass::name)
            ),
        );

        let bin_hop = sens(binomial, CostClass::RouterHop);
        let bin_port = sens(binomial, CostClass::PortService);
        ctx.shape(
            "binomial 1CL is latency-bound in the fabric",
            binomial.dominant_hardware() == Some(CostClass::RouterHop),
            format!(
                "hardware sensitivities: hop {bin_hop:.3} vs port {bin_port:.3} (dominant: {:?})",
                binomial.dominant_hardware().map(CostClass::name)
            ),
        );

        let bin_o = sens(binomial, CostClass::CoreOverhead);
        ctx.shape(
            "binomial 1CL overall cost is software overhead",
            binomial.dominant() == Some(CostClass::CoreOverhead) && bin_o > 0.5,
            format!(
                "core-overhead sensitivity {bin_o:.3} (LogP o dominates rounds of tiny messages)"
            ),
        );

        // Port scaling must *never* matter for the uncongested binomial the
        // way it does for the flat tree — the contrast itself is the claim.
        ctx.shape(
            "port sensitivity separates the two protocols",
            oc_port > 4.0 * bin_port,
            format!("flat-tree port sensitivity {oc_port:.3} vs binomial {bin_port:.3}"),
        );

        ctx.artifact("BENCH_whatif.json", whatif_artifact(&profiles, ctx.quick));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representative_scenario;

    #[test]
    fn representative_scenarios_cover_the_registry() {
        for id in ["fig4", "fig5", "fig8b", "table1", "heatmap", "nonsense"] {
            let sc = representative_scenario(id);
            assert!((1..=48).contains(&sc.cores), "{id}: {sc:?}");
            assert!(sc.lines >= 1, "{id}: {sc:?}");
        }
        // The contention experiments map to the port-saturating flat tree.
        assert_eq!(representative_scenario("fig4").label, "k=47 48c 96cl");
        // The tree-latency experiment maps to the latency-bound baseline.
        assert_eq!(representative_scenario("fig5").label, "binomial 48c 1cl");
    }

    #[test]
    fn artifact_envelope_is_versioned_and_valid() {
        let profiles = vec![WhatIfProfile {
            scenario: "t".into(),
            nominal: scc_hal::Time::from_ns(100),
            points: vec![],
        }];
        let text = whatif_artifact(&profiles, true);
        let doc = Json::parse(&text).unwrap();
        scc_obs::validate_artifact_version(&doc).unwrap();
        assert!(text.contains("\"bench\""), "{text}");
    }
}
