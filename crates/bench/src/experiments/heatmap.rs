//! Per-link mesh occupancy heatmaps: one contended 48-core broadcast
//! per collective, rendered as the 6×4 tile grid with the five
//! directed-output-link counters (E/W/N/S/eject) of every router —
//! the instrument behind the paper's Section 5 X-Y-routing contention
//! argument. The per-link counters must *partition* the per-tile
//! router aggregates exactly, and that invariant is re-checked here on
//! every run.

use super::{outln, Sweep};
use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, LinkDir, MemRange, Rma, RmaResult, Tile, Time, NUM_LINK_DIRS};
use scc_obs::LinkHeatmap;
use scc_rcce::{Barrier, MpbAllocator};
use scc_sim::{run_spmd, SimConfig, SimStats};

fn collectives() -> [(&'static str, Algorithm); 4] {
    [
        ("OC-Bcast k=2", Algorithm::oc_with_k(2)),
        ("OC-Bcast k=7", Algorithm::oc_with_k(7)),
        ("OC-Bcast k=47", Algorithm::oc_with_k(47)),
        ("binomial", Algorithm::Binomial),
    ]
}

/// One contended 48-core broadcast (two rounds, barrier-separated).
fn contended_bcast(alg: Algorithm, bytes: usize) -> SimStats {
    let cfg = SimConfig { num_cores: 48, mem_bytes: 1 << 20, ..SimConfig::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut bar = Barrier::new(&mut alloc, c.num_cores()).expect("barrier lines");
        let mut b = Broadcaster::new(&mut alloc, alg, c.num_cores()).expect("bcast lines");
        let r = MemRange::new(0, bytes);
        if c.core() == CoreId(0) {
            let payload: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
            c.mem_write(0, &payload)?;
        }
        for _ in 0..2 {
            bar.wait(c)?;
            b.bcast(c, CoreId(0), r)?;
        }
        Ok(())
    })
    .expect("broadcast must complete");
    for r in rep.results {
        r.expect("no core may fail");
    }
    rep.stats
}

/// Does the per-link breakdown reconstruct the per-tile aggregates
/// exactly? Returns the first discrepancy, if any.
fn partition_violation(stats: &SimStats) -> Option<String> {
    for tile in 0..24 {
        let base = tile * NUM_LINK_DIRS;
        let wait: Time =
            (0..NUM_LINK_DIRS).fold(Time::ZERO, |acc, d| acc + stats.link_wait[base + d]);
        let busy: Time =
            (0..NUM_LINK_DIRS).fold(Time::ZERO, |acc, d| acc + stats.link_busy[base + d]);
        if wait != stats.router_wait_by_tile[tile] || busy != stats.router_busy_by_tile[tile] {
            return Some(format!(
                "tile {tile}: links ({:.3}, {:.3}) µs vs router ({:.3}, {:.3}) µs",
                wait.as_us_f64(),
                busy.as_us_f64(),
                stats.router_wait_by_tile[tile].as_us_f64(),
                stats.router_busy_by_tile[tile].as_us_f64()
            ));
        }
    }
    None
}

pub(super) fn plan(sweep: &mut Sweep) {
    let bytes = if sweep.quick { 4 << 10 } else { 16 << 10 };
    // One contended broadcast per collective as a unit; all rendering
    // (header, per-collective sections, trailer) happens in finalize.
    for (label, alg) in collectives() {
        sweep.value_unit(format!("bcast {label}"), move |_| contended_bcast(alg, bytes));
    }

    sweep.finalize(move |ctx, mut values| {
        outln!(ctx, "# directed-link occupancy, contended 48-core broadcast ({bytes} B from C0)");
        outln!(ctx);
        for (label, _) in collectives() {
            let stats = values.next_as::<SimStats>();
            let hm = LinkHeatmap::from_slices(&stats.link_busy, &stats.link_wait);
            outln!(ctx, "{}", hm.render_ascii(&format!("{label} — busy µs per directed link")));

            let (peak_tile, peak_dir, peak_busy) = hm.peak();
            let total_busy: Time = stats.link_busy.iter().copied().fold(Time::ZERO, |a, b| a + b);
            let eject: Time = (0..24)
                .map(|t| stats.link_busy[t * NUM_LINK_DIRS + LinkDir::Eject.index()])
                .fold(Time::ZERO, |a, b| a + b);
            ctx.row(
                format!("{label} peak link busy"),
                None,
                None,
                peak_busy.as_us_f64(),
                0.02,
                "us",
            );
            ctx.row(
                format!("{label} total link busy"),
                None,
                None,
                total_busy.as_us_f64(),
                0.02,
                "us",
            );
            ctx.row(
                format!("{label} eject share"),
                None,
                None,
                eject.as_us_f64() / total_busy.as_us_f64(),
                0.02,
                "frac",
            );

            ctx.shape(
                &format!("{label}: per-link counters partition the router aggregates"),
                partition_violation(&stats).is_none(),
                partition_violation(&stats).unwrap_or_else(|| {
                    "links sum exactly to per-tile router busy/wait".to_string()
                }),
            );
            ctx.shape(
                &format!("{label}: X-Y routing never leaves the mesh boundary"),
                (0..4u8).all(|y| {
                    stats.link_busy[Tile::new(0, y).index() * NUM_LINK_DIRS + LinkDir::West.index()]
                        == Time::ZERO
                        && stats.link_busy
                            [Tile::new(5, y).index() * NUM_LINK_DIRS + LinkDir::East.index()]
                            == Time::ZERO
                }),
                format!(
                    "peak link: tile {peak_tile} {peak_dir:?} at {:.3} µs",
                    peak_busy.as_us_f64()
                ),
            );
        }
        outln!(
            ctx,
            "# every collective: link counters partition per-tile router busy/wait exactly"
        );
    });
}
