//! Configuration-space sweep: OC-Bcast latency/throughput over the
//! (k × chunk size × notification fan-out × tree strategy) grid on the
//! simulated chip, reporting the best configuration per objective.
//!
//! Registry port of the former standalone `tune` binary: each
//! admissible `(k, M_oc)` cell is one schedulable unit measuring all
//! four (fan-out × strategy) variants; finalize replays the original
//! nested-loop order so the text — and the committed
//! `results/tune.txt` — stays byte-identical.

use super::{out, Sweep};
use crate::{measure_bcast, paper_chip};
use oc_bcast::{Algorithm, OcConfig, TreeStrategy};
use scc_hal::CoreId;
use std::fmt::Write as _;

const FANOUTS: [usize; 2] = [2, 3];
const STRATEGIES: [TreeStrategy; 2] = [TreeStrategy::ById, TreeStrategy::TopologyAware];

fn ks(quick: bool) -> &'static [usize] {
    if quick {
        &[2, 7]
    } else {
        &[2, 4, 7, 12, 24, 47]
    }
}

fn chunks(quick: bool) -> &'static [usize] {
    if quick {
        &[96]
    } else {
        &[48, 96, 120]
    }
}

/// k + 1 flags + two buffers + the measurement harness's 6 barrier
/// lines must fit the MPB.
fn fits(k: usize, chunk_lines: usize) -> bool {
    1 + k + 2 * chunk_lines + 6 <= 256
}

/// Measure one `(k, M_oc)` cell: `(latency_us, throughput_mb_s)` per
/// (fan-out × strategy) variant, nested-loop order.
fn measure_cell(quick: bool, k: usize, chunk_lines: usize) -> Vec<(f64, f64)> {
    let cfg = paper_chip();
    let small = 32; // 1 CL
    let large = if quick { 96 * 32 * 8 } else { 96 * 32 * 24 };
    let mut out = Vec::with_capacity(FANOUTS.len() * STRATEGIES.len());
    for &notify_fanout in &FANOUTS {
        for &strategy in &STRATEGIES {
            let oc = OcConfig { k, chunk_lines, notify_fanout, strategy, ..OcConfig::default() };
            let lat = measure_bcast(&cfg, Algorithm::OcBcast(oc), CoreId(0), small, 1, 2)
                .expect("sim")
                .latency_us;
            let tput = measure_bcast(&cfg, Algorithm::OcBcast(oc), CoreId(0), large, 0, 1)
                .expect("sim")
                .throughput_mb_s;
            out.push((lat, tput));
        }
    }
    out
}

pub(super) fn plan(sweep: &mut Sweep) {
    let quick = sweep.quick;
    for &k in ks(quick) {
        for &chunk_lines in chunks(quick) {
            if !fits(k, chunk_lines) {
                continue;
            }
            // The large-message throughput run dominates; weight by the
            // fan-out depth so k=2's deep trees start early.
            sweep.value_unit_w(
                format!("tune k={k} M_oc={chunk_lines}"),
                48 / k as u64 + 1,
                move |_| measure_cell(quick, k, chunk_lines),
            );
        }
    }

    sweep.finalize(|ctx, mut values| {
        let mut text = String::new();
        let mut best_lat: (f64, String) = (f64::INFINITY, String::new());
        let mut best_tput: (f64, String) = (0.0, String::new());
        let mut paper_cell: Option<(f64, f64)> = None;

        let _ = writeln!(text, "{:<42} {:>10} {:>10}", "configuration", "1CL (µs)", "peak MB/s");
        for &k in ks(ctx.quick) {
            for &chunk_lines in chunks(ctx.quick) {
                if !fits(k, chunk_lines) {
                    continue;
                }
                let cell = values.next_as::<Vec<(f64, f64)>>();
                let mut variants = cell.into_iter();
                for &notify_fanout in &FANOUTS {
                    for &strategy in &STRATEGIES {
                        let (lat, tput) = variants.next().expect("4 variants per cell");
                        let label = format!(
                            "k={k:<2} M_oc={chunk_lines:<3} fanout={notify_fanout} {:?}",
                            strategy
                        );
                        let _ = writeln!(text, "{label:<42} {lat:>10.2} {tput:>10.2}");
                        if lat < best_lat.0 {
                            best_lat = (lat, label.clone());
                        }
                        if tput > best_tput.0 {
                            best_tput = (tput, label);
                        }
                        if k == 7
                            && chunk_lines == 96
                            && notify_fanout == 2
                            && strategy == TreeStrategy::ById
                        {
                            paper_cell = Some((lat, tput));
                        }
                    }
                }
            }
        }
        let _ = writeln!(text);
        let _ = writeln!(text, "best 1-CL latency : {:.2} µs  ({})", best_lat.0, best_lat.1);
        let _ = writeln!(text, "best throughput   : {:.2} MB/s ({})", best_tput.0, best_tput.1);
        let _ = writeln!(
            text,
            "# paper's choice — k=7, M_oc=96, binary fan-out, id tree — trades a few"
        );
        let _ = writeln!(
            text,
            "# percent of each objective for contention headroom (Sections 3.3/5.2)."
        );

        ctx.row("best 1CL latency", None, None, best_lat.0, 0.02, "us");
        ctx.row("best throughput", None, None, best_tput.0, 0.02, "MB/s");
        let (paper_lat, paper_tput) = paper_cell.expect("grid covers the paper's k=7 M_oc=96");
        ctx.row("paper config 1CL latency", None, None, paper_lat, 0.02, "us");
        ctx.row("paper config throughput", None, None, paper_tput, 0.02, "MB/s");
        ctx.shape(
            "the paper's k=7/M_oc=96 choice stays within 15% of both optima",
            paper_lat <= best_lat.0 * 1.15 && paper_tput >= best_tput.0 * 0.85,
            format!(
                "paper {paper_lat:.2} us / {paper_tput:.2} MB/s vs best {:.2} us / {:.2} MB/s",
                best_lat.0, best_tput.0
            ),
        );
        ctx.shape(
            "both objectives found a finite optimum",
            best_lat.0.is_finite() && best_tput.0 > 0.0,
            format!("lat {} | tput {}", best_lat.1, best_tput.1),
        );

        out!(ctx, "{text}");
        ctx.artifact("results/tune.txt", text);
    });
}
