//! Figure 6: *analytically modeled* broadcast latency vs message size
//! for OC-Bcast (k = 2, 7, 47) and the binomial tree at P = 48 —
//! panel (a) up to 180 cache lines, panel (b) the ≤ 30-line zoom.

use super::{outln, ExpCtx, Sweep};
use scc_model::bcast::FullModelCfg;
use scc_model::series::fig6_curves;
use scc_model::ModelParams;

pub(super) fn plan(sweep: &mut Sweep) {
    // Model-only (no simulator in the loop) — one unit.
    sweep.unit("curves", run);
}

fn run(ctx: &mut ExpCtx) {
    let params = ModelParams::paper();
    let cfg = FullModelCfg::default();
    let ks = [2usize, 7, 47];

    for (title, sizes) in [
        (
            "Figure 6a — modeled broadcast latency (µs), P = 48",
            (1..=180).step_by(4).collect::<Vec<usize>>(),
        ),
        ("Figure 6b — zoom on small messages", (1..=30).collect::<Vec<usize>>()),
    ] {
        let curves = fig6_curves(&params, &cfg, 48, &ks, &sizes).expect("static sweep");
        let labels: Vec<String> = curves.iter().map(|c| c.label.clone()).collect();
        let rows: Vec<(usize, Vec<f64>)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, curves.iter().map(|c| c.points[i].1).collect()))
            .collect();
        ctx.series(title, "cache_lines", &labels, &rows);
    }

    // Structured rows: the model is the measurement here (there is no
    // simulator in the loop), so `sim` and `model` coincide and the
    // drift gate tracks changes to the analytical code itself.
    for m in [1usize, 29, 96, 177] {
        for k in &ks {
            let v = scc_model::oc_latency_full(&params, &cfg, 48, m, *k);
            ctx.row(format!("latency k={k} m={m}"), None, Some(v), v, 0.01, "us");
        }
        let v = scc_model::binomial_latency_full(&params, &cfg, 48, m);
        ctx.row(format!("latency binomial m={m}"), None, Some(v), v, 0.01, "us");
    }

    // The qualitative claims of Section 5.2.
    let l = |m: usize, k: usize| scc_model::oc_latency_full(&params, &cfg, 48, m, k);
    let binom = |m: usize| scc_model::binomial_latency_full(&params, &cfg, 48, m);
    ctx.shape(
        "OC-Bcast (k=7) beats binomial at 1 CL",
        l(1, 7) < binom(1),
        format!("k=7 {:.3} µs vs binomial {:.3} µs", l(1, 7), binom(1)),
    );
    ctx.shape(
        "k=47 pays the polling cost at 1 CL",
        l(1, 47) > l(1, 7),
        format!("k=47 {:.3} µs vs k=7 {:.3} µs", l(1, 47), l(1, 7)),
    );
    ctx.shape(
        "the gap to binomial grows with message size",
        binom(180) - l(180, 7) > binom(1) - l(1, 7),
        format!(
            "gap at 180 CL {:.3} µs vs gap at 1 CL {:.3} µs",
            binom(180) - l(180, 7),
            binom(1) - l(1, 7)
        ),
    );
    outln!(ctx, "# Section 5.2 ordering claims hold for the modeled curves");
}
