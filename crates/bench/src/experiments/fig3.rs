//! Figure 3: put/get completion time as a function of router distance
//! for 1/4/8/16 cache lines — measurement dots (simulator) vs model
//! lines (Formulas 7–12 with Table-1 parameters), four panels.

use super::{outln, Sweep};
use crate::paper_chip;
use scc_model::{ModelParams, P2p};
use scc_sim::{measure_p2p, P2pKind};

const SIZES: [usize; 4] = [1, 4, 8, 16];
const REPS: u32 = 3;

const PANELS: [(&str, P2pKind, u32); 4] = [
    ("MPB to MPB Get Completion Time", P2pKind::GetMpb, 9),
    ("MPB to MPB Put Completion Time", P2pKind::PutMpb, 9),
    ("MPB to Memory Get Completion Time", P2pKind::GetMem, 4),
    ("Memory to MPB Put Completion Time", P2pKind::PutMem, 4),
];

pub(super) fn plan(sweep: &mut Sweep) {
    // One unit per (panel, distance): the four sizes' measurements at
    // that distance. The model half of each column is pure arithmetic
    // and stays in the finalize step.
    for (_, kind, dmax) in PANELS {
        for d in 1..=dmax {
            sweep.value_unit(format!("{} d={d}", kind_short(kind)), move |_| {
                let cfg = paper_chip();
                SIZES
                    .iter()
                    .map(|&m| measure_p2p(&cfg, kind, m, d, REPS).expect("sim").as_us_f64())
                    .collect::<Vec<f64>>()
            });
        }
    }

    sweep.finalize(|ctx, mut values| {
        let model = P2p::new(ModelParams::paper());
        for (title, kind, dmax) in PANELS {
            let labels: Vec<String> =
                SIZES.iter().flat_map(|m| [format!("exp:{m}CL"), format!("model:{m}CL")]).collect();
            let mut rows = Vec::new();
            for d in 1..=dmax {
                let exps = values.next_as::<Vec<f64>>();
                let mut cols = Vec::new();
                for (i, &m) in SIZES.iter().enumerate() {
                    let mdl = match kind {
                        P2pKind::GetMpb => model.c_get_mpb(m, d),
                        P2pKind::PutMpb => model.c_put_mpb(m, d),
                        P2pKind::GetMem => model.c_get_mem(m, 1, d),
                        P2pKind::PutMem => model.c_put_mem(m, d, 1),
                    };
                    cols.push(exps[i]);
                    cols.push(mdl);
                }
                rows.push((d as usize, cols));
            }
            ctx.series(title, "hops", &labels, &rows);

            // Structured rows: the near and far end of each panel's sweep.
            let short = kind_short(kind);
            for &(d, ref cols) in [&rows[0], rows.last().expect("rows")] {
                for (i, &m) in SIZES.iter().enumerate() {
                    ctx.row(
                        format!("{short} {m}CL d={d}"),
                        None,
                        Some(cols[2 * i + 1]),
                        cols[2 * i],
                        0.02,
                        "us",
                    );
                }
            }

            // The paper's validation claim: model and measurement agree.
            let mut worst = (0.0f64, 0usize, 0.0, 0.0);
            for (d, cols) in &rows {
                for pair in cols.chunks_exact(2) {
                    let rel = (pair[0] - pair[1]).abs() / pair[1];
                    if rel > worst.0 {
                        worst = (rel, *d, pair[0], pair[1]);
                    }
                }
            }
            ctx.shape(
                &format!("{short}: simulator within 2% of model at every (size, distance)"),
                worst.0 < 0.02,
                format!(
                    "worst at d={}: exp {:.4} vs model {:.4} ({:.2}% off)",
                    worst.1,
                    worst.2,
                    worst.3,
                    worst.0 * 100.0
                ),
            );
        }
        outln!(ctx, "# all panels: simulator within 2% of the analytical model");
    });
}

fn kind_short(kind: P2pKind) -> &'static str {
    match kind {
        P2pKind::GetMpb => "get_mpb",
        P2pKind::PutMpb => "put_mpb",
        P2pKind::GetMem => "get_mem",
        P2pKind::PutMem => "put_mem",
    }
}
