//! Figure 3: put/get completion time as a function of router distance
//! for 1/4/8/16 cache lines — measurement dots (simulator) vs model
//! lines (Formulas 7–12 with Table-1 parameters), four panels.

use super::{outln, ExpCtx};
use crate::paper_chip;
use scc_model::{ModelParams, P2p};
use scc_sim::{measure_p2p, P2pKind};

pub(super) fn run(ctx: &mut ExpCtx) {
    let cfg = paper_chip();
    let model = P2p::new(ModelParams::paper());
    let sizes = [1usize, 4, 8, 16];
    let reps = 3;

    let panels: [(&str, P2pKind, u32); 4] = [
        ("MPB to MPB Get Completion Time", P2pKind::GetMpb, 9),
        ("MPB to MPB Put Completion Time", P2pKind::PutMpb, 9),
        ("MPB to Memory Get Completion Time", P2pKind::GetMem, 4),
        ("Memory to MPB Put Completion Time", P2pKind::PutMem, 4),
    ];

    for (title, kind, dmax) in panels {
        let labels: Vec<String> =
            sizes.iter().flat_map(|m| [format!("exp:{m}CL"), format!("model:{m}CL")]).collect();
        let mut rows = Vec::new();
        for d in 1..=dmax {
            let mut cols = Vec::new();
            for &m in &sizes {
                let exp = measure_p2p(&cfg, kind, m, d, reps).expect("sim").as_us_f64();
                let mdl = match kind {
                    P2pKind::GetMpb => model.c_get_mpb(m, d),
                    P2pKind::PutMpb => model.c_put_mpb(m, d),
                    P2pKind::GetMem => model.c_get_mem(m, 1, d),
                    P2pKind::PutMem => model.c_put_mem(m, d, 1),
                };
                cols.push(exp);
                cols.push(mdl);
            }
            rows.push((d as usize, cols));
        }
        ctx.series(title, "hops", &labels, &rows);

        // Structured rows: the near and far end of each panel's sweep.
        let short = kind_short(kind);
        for &(d, ref cols) in [&rows[0], rows.last().expect("rows")] {
            for (i, &m) in sizes.iter().enumerate() {
                ctx.row(
                    format!("{short} {m}CL d={d}"),
                    None,
                    Some(cols[2 * i + 1]),
                    cols[2 * i],
                    0.02,
                    "us",
                );
            }
        }

        // The paper's validation claim: model and measurement agree.
        let mut worst = (0.0f64, 0usize, 0.0, 0.0);
        for (d, cols) in &rows {
            for pair in cols.chunks_exact(2) {
                let rel = (pair[0] - pair[1]).abs() / pair[1];
                if rel > worst.0 {
                    worst = (rel, *d, pair[0], pair[1]);
                }
            }
        }
        ctx.shape(
            &format!("{short}: simulator within 2% of model at every (size, distance)"),
            worst.0 < 0.02,
            format!(
                "worst at d={}: exp {:.4} vs model {:.4} ({:.2}% off)",
                worst.1,
                worst.2,
                worst.3,
                worst.0 * 100.0
            ),
        );
    }
    outln!(ctx, "# all panels: simulator within 2% of the analytical model");
}

fn kind_short(kind: P2pKind) -> &'static str {
    match kind {
        P2pKind::GetMpb => "get_mpb",
        P2pKind::PutMpb => "put_mpb",
        P2pKind::GetMem => "get_mem",
        P2pKind::PutMem => "put_mem",
    }
}
