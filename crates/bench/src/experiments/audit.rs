//! Causal trace audit: every representative protocol run — the
//! contention spectrum {flat k=47, the paper's default k=7, binomial}
//! crossed with {plain, reliable-healthy, reliable-faulted} — is
//! recorded on the full 48-core chip and re-checked against the
//! happens-before invariants of [`scc_obs::audit`]: span nesting,
//! park/wake pairing with no lost wakeups, per-flag-line protocol
//! state machines, delivery-window containment with the last close on
//! the makespan, graph acyclicity, and commit/fault accounting. A
//! healthy run must audit to *zero* violations; that is pinned both as
//! shape checks and as zero-tolerance rows.
//!
//! Because "zero violations" is trivially satisfied by a checker that
//! checks nothing, the faulted streams are additionally corrupted by
//! the seeded mutation harness — one deterministic mutation per
//! [`MutationClass`] — and the auditor must detect each mutant *and*
//! name the expected violation class.
//!
//! The finalize step derives `BENCH_audit.json` and the human digest
//! `results/AUDIT.md`. The observatory only writes those sidecars
//! under `--audit`; the rows and shape checks join
//! `BENCH_figures.json` unconditionally. Recording and mutation seeds
//! are deterministic, so every artifact is byte-identical at any
//! `--jobs` count.

use super::{outln, Sweep};
use crate::{record_reliable_run, record_run, Scenario};
use oc_bcast::{Algorithm, Reliability};
use scc_hal::Time;
use scc_obs::{
    audit, audit_artifact, mutate, render_audit_markdown, AuditScenario, AuditSpec, MutationClass,
    MutationTrial,
};
use scc_sim::{FaultPlan, SimParams};

/// The paper's full chip; the auditor earns its keep at scale.
const CORES: usize = 48;

/// Base seed of the mutation harness; each trial folds in the
/// scenario and class indices so no two trials share a site draw.
const MUTATION_SEED: u64 = 0xC0FFEE;

/// How a scenario exercises the protocol stack.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// The plain collective, no reliability layer, no faults.
    Plain,
    /// The reliable collective on a healthy chip (timers armed, no
    /// recovery traffic expected).
    Reliable,
    /// The reliable collective under the deterministic fault plan —
    /// the only mode whose streams carry `Fault` events, so the only
    /// one the full five-class mutation matrix applies to.
    Faulted,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Plain => "plain",
            Mode::Reliable => "reliable",
            Mode::Faulted => "faulted",
        }
    }

    fn spec(self) -> AuditSpec {
        match self {
            Mode::Plain => AuditSpec::plain(),
            Mode::Reliable => AuditSpec::reliable(),
            Mode::Faulted => AuditSpec::faulted(),
        }
    }
}

/// Same timeout rationale as the `faults` experiment: above the
/// longest legitimate fault-free wait, so recovery traffic in the
/// stream is always fault-caused.
fn policy() -> Reliability {
    Reliability { timeout: Time::from_us_f64(600.0), ..Reliability::standard() }
}

/// The `faults` experiment's 50 000 ppm operating point: high enough
/// that every protocol actually loses notifications at both message
/// sizes, so every recovery path — and the mutation harness's
/// `DeleteFault` site pool — is exercised even in `--quick` runs.
fn faulty_plan() -> FaultPlan {
    FaultPlan {
        drop_notification_ppm: 50_000,
        delay_ppm: 25_000,
        delay: Time::from_us_f64(5.0),
        ..FaultPlan::default()
    }
}

fn msg_lines(quick: bool) -> usize {
    if quick {
        32
    } else {
        96
    }
}

/// `(stable id, protocol, mode)` for all nine audited scenarios.
fn scenarios(quick: bool) -> Vec<(String, Scenario, Mode)> {
    let lines = msg_lines(quick);
    let protos = [
        ("oc_k47", Algorithm::oc_with_k(47)),
        ("oc_k7", Algorithm::oc_with_k(7)),
        ("binomial", Algorithm::Binomial),
    ];
    let mut out = Vec::new();
    for (pid, alg) in protos {
        for mode in [Mode::Plain, Mode::Reliable, Mode::Faulted] {
            out.push((format!("{pid}_{}", mode.name()), Scenario::new(alg, CORES, lines), mode));
        }
    }
    out
}

/// Record one scenario, audit it, and (for faulted streams) run the
/// five-class mutation matrix against the same events.
fn run_point(id: &str, sc: &Scenario, mode: Mode, scenario_index: u64) -> AuditScenario {
    let (events, makespan) = match mode {
        Mode::Plain => record_run(sc, SimParams::default()),
        Mode::Reliable => {
            record_reliable_run(sc, SimParams::default(), FaultPlan::default(), policy())
        }
        Mode::Faulted => record_reliable_run(sc, SimParams::default(), faulty_plan(), policy()),
    }
    .expect("recorded broadcast");
    let spec = mode.spec().with_makespan(makespan);
    let rep = audit(&events, &spec);

    let mut mutations = Vec::new();
    if mode == Mode::Faulted {
        for (ci, class) in MutationClass::ALL.into_iter().enumerate() {
            let seed = MUTATION_SEED ^ (scenario_index << 8) ^ ci as u64;
            let mut corrupted = events.clone();
            // `mutate` returning None means the stream had no eligible
            // site — recorded as an undetected trial so the shape
            // check names the hole instead of silently shrinking the
            // matrix.
            let (detected, classified) = match mutate(&mut corrupted, class, seed) {
                Some(_) => {
                    let mrep = audit(&corrupted, &spec);
                    (!mrep.ok(), mrep.classes().contains(&class.expected()))
                }
                None => (false, false),
            };
            mutations.push(MutationTrial {
                mutation: class.name().to_string(),
                seed,
                detected,
                classified,
            });
        }
    }

    AuditScenario {
        id: id.to_string(),
        label: format!("{} {}", sc.label, mode.name()),
        cores: CORES as u64,
        events: rep.events,
        edges: rep.edges,
        checks: rep.checked(),
        violations: rep.violations.len() as u64,
        classes: rep.classes().iter().map(|c| c.name().to_string()).collect(),
        mutations,
    }
}

pub(super) fn plan(sweep: &mut Sweep) {
    for (si, (id, sc, mode)) in scenarios(sweep.quick).into_iter().enumerate() {
        // Faulted units record, audit, and then re-audit five mutants
        // of the same stream — weight them accordingly.
        let cost = sc.lines as u64 * if mode == Mode::Faulted { 6 } else { 1 };
        sweep.value_unit_w(format!("audit {id}"), cost, move |_| {
            run_point(&id, &sc, mode, si as u64)
        });
    }

    sweep.finalize(move |ctx, mut values| {
        let scs = scenarios(ctx.quick);
        outln!(
            ctx,
            "# causal trace audit, {CORES}-core recorded broadcasts ({} cache lines)",
            msg_lines(ctx.quick)
        );
        outln!(ctx, "# healthy streams must show 0 violations; mutants must be caught");
        let mut audited: Vec<AuditScenario> = Vec::new();
        for (id, _, mode) in &scs {
            let s = values.next_as::<AuditScenario>();
            outln!(
                ctx,
                "{id:<18} {:>6} events {:>6} edges {:>7} checks  {} violation(s){}",
                s.events,
                s.edges,
                s.checks,
                s.violations,
                if s.mutations.is_empty() {
                    String::new()
                } else {
                    format!(
                        "  mutants {}/{} caught",
                        s.mutations.iter().filter(|m| m.detected && m.classified).count(),
                        s.mutations.len()
                    )
                },
            );
            ctx.row(format!("{id} violations"), None, None, s.violations as f64, 0.0, "count");
            ctx.shape(
                &format!("{id}: recorded stream audits to zero violations"),
                s.violations == 0,
                format!("{} checks over {} events: {}", s.checks, s.events, s.classes.join(", ")),
            );
            // A zero-violation verdict from a checker that examined
            // nothing proves nothing — pin non-vacuity per stream.
            ctx.shape(
                &format!("{id}: the audit examined the stream (non-vacuous)"),
                s.checks > 100 && s.edges > 0,
                format!("{} checks, {} edges", s.checks, s.edges),
            );
            if *mode == Mode::Faulted {
                ctx.shape(
                    &format!("{id}: every mutation class is detected and classified"),
                    s.mutations.len() == MutationClass::ALL.len() && s.mutations_all_caught(),
                    s.mutations
                        .iter()
                        .map(|m| {
                            format!(
                                "{}:{}",
                                m.mutation,
                                match (m.detected, m.classified) {
                                    (true, true) => "caught",
                                    (true, false) => "misclassified",
                                    _ => "MISSED",
                                }
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                );
            }
            audited.push(s);
        }
        ctx.artifact("BENCH_audit.json", audit_artifact(&audited).render());
        ctx.artifact("results/AUDIT.md", render_audit_markdown(&audited));
    });
}
