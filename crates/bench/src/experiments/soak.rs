//! Soak: thousands of back-to-back reliable broadcasts through healthy
//! and fault-plan traffic phases, reduced to streaming telemetry.
//!
//! Nobody replays ten thousand event streams, so the soak inverts the
//! observability pipeline: every epoch collapses to an [`EpochRollup`]
//! (exact per-epoch p99/makespan plus recovery-counter deltas), the
//! cross-epoch latency distribution lives in mergeable log₂
//! [`QuantileSketch`]es, and the [`SloPolicy`] watchdog checks every
//! rollup against its budgets. Only a breach triggers forensics: the
//! breached chunk ran with the bounded flight-recorder ring on, and its
//! retained window is dumped as a Chrome trace + journey book + skew
//! digest (first [`MAX_DUMPS`] breached chunks per scenario).
//!
//! Epochs are grouped into chunks — one `run_spmd` per chunk, the
//! broadcast context shared across all epochs of the chunk (the
//! repeated-broadcast pattern of `oc_bcast::reliable`'s tests) — so
//! the sweep parallelizes across chunks while every number merges in
//! declaration order: `BENCH_soak.json`, `results/SOAK.md`, and
//! `results/soak_metrics.txt` are byte-identical at any `--jobs`.

use super::{outln, Sweep};
use oc_bcast::{OcBcast, OcConfig, RelStats, Reliability, ReliableBinomial};
use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult, Time};
use scc_obs::{
    audit, chrome_trace_json, journeys_artifact, render_skew_markdown, render_soak_markdown,
    render_soak_openmetrics, soak_artifact, AuditSpec, EpochRollup, JourneyBook, LatencyHistogram,
    ObsEvent, QuantileSketch, RecoveryCounters, SkewReport, SloPolicy, SoakPhase, SoakScenario,
};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, FaultPlan, SimConfig};

/// Soak trades chip scale for epoch volume: half the chip, small
/// messages, ten thousand broadcasts.
const CORES: usize = 24;
const ROOT: CoreId = CoreId(0);

/// Transfers hit by the delay fault stall this long (drop/2 rate).
const DELAY: Time = Time(5_000_000); // 5 µs

/// Flight-recorder ring capacity for fault-phase chunks: enough for
/// the last few epochs of a chunk at fixed memory cost.
const FLIGHT_WINDOW: usize = 16_384;

/// At most this many forensic dumps per scenario (first breached
/// chunks in epoch order); the rest are listed as breaches only.
const MAX_DUMPS: usize = 2;

/// Same reliability policy as the `faults` experiment: timeout above
/// the longest legitimate fault-free wait, so healthy phases must stay
/// timeout-free and every reported recovery is fault-caused.
fn policy() -> Reliability {
    Reliability { timeout: Time::from_us_f64(600.0), ..Reliability::standard() }
}

/// The watchdog budgets. Healthy epochs on this configuration finish
/// well under 100 µs end to end; a recovery stalls its epoch by the
/// 600 µs timeout. The budgets sit between those regimes, so healthy
/// phases must be breach-free and every recovered epoch trips all
/// three objectives.
fn slo() -> SloPolicy {
    SloPolicy {
        p99_budget: Some(Time::from_us_f64(300.0)),
        makespan_budget: Some(Time::from_us_f64(450.0)),
        zero_recoveries: true,
    }
}

#[derive(Clone, Copy)]
enum Proto {
    Oc(usize),
    Binomial,
}

/// One traffic phase: `epochs` back-to-back broadcasts under one drop
/// rate, split into `chunk` -epoch units.
struct PhasePlan {
    id: &'static str,
    drop_ppm: u32,
    epochs: usize,
    chunk: usize,
}

struct ScenarioPlan {
    id: &'static str,
    proto: Proto,
    phases: Vec<PhasePlan>,
}

fn msg_lines(quick: bool) -> usize {
    if quick {
        4
    } else {
        8
    }
}

/// Mid-run fault phase between two healthy phases. The full oc_k7 soak
/// is the acceptance workload: 10,000 epochs. Quick mode keeps the
/// same three-phase shape at a few dozen epochs (with a denser drop
/// rate so the short fault phase still faults).
fn scenarios(quick: bool) -> Vec<ScenarioPlan> {
    let (oc, bin, rate) = if quick {
        ((48, 24, 24), (40, 20, 20), 20_000)
    } else {
        ((4_000, 2_000, 200), (400, 200, 100), 2_000)
    };
    let phases = |sizes: (usize, usize, usize)| {
        vec![
            PhasePlan { id: "healthy_a", drop_ppm: 0, epochs: sizes.0, chunk: sizes.2 },
            PhasePlan { id: "faults", drop_ppm: rate, epochs: sizes.1, chunk: sizes.2 },
            PhasePlan { id: "healthy_b", drop_ppm: 0, epochs: sizes.0, chunk: sizes.2 },
        ]
    };
    vec![
        ScenarioPlan { id: "oc_k7", proto: Proto::Oc(7), phases: phases(oc) },
        ScenarioPlan { id: "binomial", proto: Proto::Binomial, phases: phases(bin) },
    ]
}

fn label(proto: Proto, lines: usize) -> String {
    match proto {
        Proto::Oc(k) => format!("k={k} {CORES}c {lines}cl"),
        Proto::Binomial => format!("binomial {CORES}c {lines}cl"),
    }
}

/// Epoch payloads differ so a stale buffer can never verify.
fn payload_for(epoch: usize, bytes: usize) -> Vec<u8> {
    (0..bytes).map(|i| ((i + epoch * 17) % 251) as u8).collect()
}

fn diff(now: RelStats, before: RelStats) -> RelStats {
    RelStats {
        timeouts: now.timeouts - before.timeouts,
        probes: now.probes - before.probes,
        recoveries: now.recoveries - before.recoveries,
        renotifies: now.renotifies - before.renotifies,
    }
}

/// What one chunk of back-to-back epochs reduces to.
struct ChunkOut {
    /// One rollup per epoch, global epoch ids.
    rollups: Vec<EpochRollup>,
    /// Per-destination delivered latencies, all epochs of the chunk.
    sketch: QuantileSketch,
    /// The same latencies exactly, for the sketch-vs-exact replay
    /// check in finalize.
    lats: Vec<Time>,
    probes: u64,
    renotifies: u64,
    /// Faults the plan injected across the whole chunk run.
    faults: u64,
    /// Every destination of every epoch verified its payload.
    verified: bool,
    /// Flight-recorder window (fault-phase chunks only).
    window: Option<Vec<ObsEvent>>,
}

/// Run one chunk: `epochs` broadcasts in one shared reliable context.
fn run_chunk(
    proto: Proto,
    lines: usize,
    drop_ppm: u32,
    base_epoch: usize,
    epochs: usize,
) -> ChunkOut {
    let bytes = lines * 32;
    let cfg = SimConfig {
        num_cores: CORES,
        mem_bytes: (bytes.next_power_of_two()).max(1 << 16),
        faults: FaultPlan {
            drop_notification_ppm: drop_ppm,
            delay_ppm: drop_ppm / 2,
            delay: DELAY,
            ..FaultPlan::default()
        },
        // Forensics are only ever wanted where faults can strike; the
        // bounded ring keeps the cost fixed per chunk.
        flight: if drop_ppm > 0 { FLIGHT_WINDOW } else { 0 },
        ..SimConfig::default()
    };
    // As in the faults sweep: no start barrier — the plain barrier
    // signals through exactly the remote flag puts the plan drops.
    let rep = run_spmd(&cfg, move |c| -> RmaResult<Vec<(Time, Time, bool, RelStats)>> {
        let mut alloc = MpbAllocator::new();
        let r = MemRange::new(0, bytes);
        let mut out = Vec::with_capacity(epochs);
        match proto {
            Proto::Oc(k) => {
                let mut bc = OcBcast::new_reliable(&mut alloc, OcConfig::with_k(k), policy())
                    .expect("MPB layout fits");
                for e in 0..epochs {
                    let payload = payload_for(base_epoch + e, bytes);
                    if c.core() == ROOT {
                        c.mem_write(0, &payload)?;
                    }
                    let t0 = c.now();
                    bc.bcast_reliable(c, ROOT, r)?;
                    let t1 = c.now();
                    let ok = c.mem_to_vec(r)? == payload;
                    out.push((t0, t1, ok, bc.rel_stats().unwrap_or_default()));
                }
            }
            Proto::Binomial => {
                let mut bc = ReliableBinomial::new(&mut alloc, c.num_cores(), policy())
                    .expect("MPB layout fits");
                for e in 0..epochs {
                    let payload = payload_for(base_epoch + e, bytes);
                    if c.core() == ROOT {
                        c.mem_write(0, &payload)?;
                    }
                    let t0 = c.now();
                    bc.bcast(c, ROOT, r)?;
                    let t1 = c.now();
                    let ok = c.mem_to_vec(r)? == payload;
                    out.push((t0, t1, ok, bc.stats()));
                }
            }
        }
        Ok(out)
    })
    .expect("soak chunk run");

    let per: Vec<Vec<(Time, Time, bool, RelStats)>> =
        rep.results.into_iter().map(|r| r.expect("reliable bcast must complete")).collect();
    let mut out = ChunkOut {
        rollups: Vec::with_capacity(epochs),
        sketch: QuantileSketch::new(),
        lats: Vec::with_capacity(epochs * (CORES - 1)),
        probes: 0,
        renotifies: 0,
        faults: rep.stats.faults,
        verified: true,
        window: rep.events,
    };
    let mut prev = vec![RelStats::default(); CORES];
    for e in 0..epochs {
        let root_call = per[ROOT.index()][e].0;
        let mut hist = LatencyHistogram::new();
        let mut makespan = Time::ZERO;
        let mut timeouts = 0u64;
        let mut recoveries = 0u64;
        for (ci, core) in per.iter().enumerate() {
            let (_, t1, ok, stats) = core[e];
            out.verified &= ok;
            let d = diff(stats, prev[ci]);
            prev[ci] = stats;
            timeouts += d.timeouts;
            recoveries += d.recoveries;
            out.probes += d.probes;
            out.renotifies += d.renotifies;
            if ci != ROOT.index() {
                let lat = t1 - root_call;
                hist.record(lat);
                out.sketch.record(lat);
                out.lats.push(lat);
                makespan = makespan.max(lat);
            }
        }
        out.rollups.push(EpochRollup {
            epoch: (base_epoch + e) as u32,
            p99: hist.quantile(0.99).expect("every epoch has destinations"),
            makespan,
            timeouts,
            recoveries,
            // Fault injection is only observable per run, not per
            // epoch; phase totals carry the injected counts.
            faults: 0,
        });
    }
    out
}

pub(super) fn plan(sweep: &mut Sweep) {
    let lines = msg_lines(sweep.quick);
    for sc in scenarios(sweep.quick) {
        let mut base = 0usize;
        let proto = sc.proto;
        for ph in &sc.phases {
            let mut done = 0usize;
            while done < ph.epochs {
                let n = ph.chunk.min(ph.epochs - done);
                let (id, phase_id, drop, start) = (sc.id, ph.id, ph.drop_ppm, base + done);
                // Fault-phase chunks do recovery work and carry the
                // flight ring — start them early.
                let cost = n as u64 * if drop > 0 { 4 } else { 1 };
                sweep.value_unit_w(format!("soak {id} {phase_id} e{start}"), cost, move |_| {
                    run_chunk(proto, lines, drop, start, n)
                });
                done += n;
            }
            base += ph.epochs;
        }
    }

    sweep.finalize(move |ctx, mut values| {
        let lines = msg_lines(ctx.quick);
        outln!(ctx, "# soak: back-to-back reliable broadcasts, {CORES} cores, {lines} cache lines");
        outln!(ctx, "# SLO per epoch: p99 <= 300 us, makespan <= 450 us, zero recoveries");
        let mut report: Vec<SoakScenario> = Vec::new();
        let mut all_verified = true;
        // `(dump stem, invariant instances checked, violations)` for
        // every flight window dumped below.
        let mut dump_audits: Vec<(String, u64, u64)> = Vec::new();
        for sc in scenarios(ctx.quick) {
            let mut scenario = SoakScenario {
                id: sc.id.to_string(),
                label: label(sc.proto, lines),
                cores: CORES as u64,
                policy: slo(),
                phases: Vec::new(),
            };
            let mut dumps_left = MAX_DUMPS;
            for ph in &sc.phases {
                let mut phase = SoakPhase {
                    id: ph.id.to_string(),
                    drop_ppm: u64::from(ph.drop_ppm),
                    epochs: ph.epochs as u64,
                    sketch: QuantileSketch::new(),
                    makespan_max: Time::ZERO,
                    timeouts: 0,
                    probes: 0,
                    recoveries: 0,
                    renotifies: 0,
                    faults: 0,
                    breaches: Vec::new(),
                    dumps: Vec::new(),
                };
                let mut exact = LatencyHistogram::new();
                let mut done = 0usize;
                while done < ph.epochs {
                    let chunk = values.next_as::<ChunkOut>();
                    let n = chunk.rollups.len();
                    all_verified &= chunk.verified;
                    phase.sketch.merge(&chunk.sketch);
                    for &l in &chunk.lats {
                        exact.record(l);
                    }
                    phase.probes += chunk.probes;
                    phase.renotifies += chunk.renotifies;
                    phase.faults += chunk.faults;
                    let mut chunk_breached = false;
                    for r in &chunk.rollups {
                        phase.makespan_max = phase.makespan_max.max(r.makespan);
                        phase.timeouts += r.timeouts;
                        phase.recoveries += r.recoveries;
                        let breaches = scenario.policy.check(r);
                        chunk_breached |= !breaches.is_empty();
                        phase.breaches.extend(breaches);
                    }
                    // A breach freezes the chunk's flight ring and
                    // dumps forensics for just that window.
                    if chunk_breached && dumps_left > 0 {
                        if let Some(window) = &chunk.window {
                            dumps_left -= 1;
                            let first = chunk.rollups[0].epoch;
                            let last = chunk.rollups[n - 1].epoch;
                            let stem = format!("results/soak_dump_{}_e{first:05}-{last:05}", sc.id);
                            // Audit the retained window before dumping
                            // it: a breach explains *slow*, never
                            // *wrong* — window mode tolerates the
                            // ring's truncated prefix.
                            let arep = audit(window, &AuditSpec::faulted().windowed());
                            dump_audits.push((
                                stem.clone(),
                                arep.checked(),
                                arep.violations.len() as u64,
                            ));
                            ctx.artifact(format!("{stem}_trace.json"), chrome_trace_json(window));
                            let book = JourneyBook::from_events(window);
                            ctx.artifact(
                                format!("{stem}_journeys.json"),
                                journeys_artifact(&[(sc.id.to_string(), book.clone())]).render(),
                            );
                            phase.dumps.push(format!("{stem}_trace.json"));
                            phase.dumps.push(format!("{stem}_journeys.json"));
                            if let Some(skew) = SkewReport::from_book(sc.id, &book) {
                                let skew = skew.with_recovery(RecoveryCounters {
                                    timeouts: phase.timeouts,
                                    probes: phase.probes,
                                    recoveries: phase.recoveries,
                                    renotifies: phase.renotifies,
                                });
                                ctx.artifact(
                                    format!("{stem}_skew.md"),
                                    render_skew_markdown(std::slice::from_ref(&skew)),
                                );
                                phase.dumps.push(format!("{stem}_skew.md"));
                            }
                        }
                    }
                    done += n;
                }
                let us = |t: Option<Time>| t.map_or(0.0, |t| t.as_us_f64());
                let p50 = us(phase.sketch.quantile(0.50));
                let p99 = us(phase.sketch.quantile(0.99));
                ctx.row(format!("{} {} delivery p50", sc.id, ph.id), None, None, p50, 0.02, "us");
                ctx.row(format!("{} {} delivery p99", sc.id, ph.id), None, None, p99, 0.02, "us");
                ctx.row(
                    format!("{} {} makespan max", sc.id, ph.id),
                    None,
                    None,
                    phase.makespan_max.as_us_f64(),
                    0.02,
                    "us",
                );
                outln!(
                    ctx,
                    "{:<10} {:<10} {:>6} epochs  p50 {:>9.3}  p99 {:>9.3} us  \
                     {:>4} recoveries  {:>4} breaches  {} dumps",
                    sc.id,
                    ph.id,
                    ph.epochs,
                    p50,
                    p99,
                    phase.recoveries,
                    phase.breaches.len(),
                    phase.dumps.len(),
                );
                // The acceptance bound: a sketch quantile is the upper
                // edge of the exact value's bucket — at least the
                // exact nearest-rank value and less than 2x it
                // (replayed here on the retained full distribution).
                let sk = phase.sketch.quantile(0.99).expect("phase has latencies");
                let ex = exact.quantile(0.99).expect("phase has latencies");
                ctx.shape(
                    &format!("{}/{}: sketch p99 within its bucket bound of exact", sc.id, ph.id),
                    sk >= ex && (ex == Time::ZERO || sk.as_ps() < 2 * ex.as_ps()),
                    format!("sketch {:.3} us, exact {:.3} us", sk.as_us_f64(), ex.as_us_f64()),
                );
                scenario.phases.push(phase);
            }

            for ph in &scenario.phases {
                if ph.drop_ppm == 0 {
                    ctx.shape(
                        &format!("{}/{}: healthy phase is clean and dump-free", scenario.id, ph.id),
                        ph.timeouts == 0
                            && ph.recoveries == 0
                            && ph.faults == 0
                            && ph.breaches.is_empty()
                            && ph.dumps.is_empty(),
                        format!(
                            "{} timeouts, {} recoveries, {} faults, {} breaches, {} dumps",
                            ph.timeouts,
                            ph.recoveries,
                            ph.faults,
                            ph.breaches.len(),
                            ph.dumps.len()
                        ),
                    );
                } else {
                    ctx.shape(
                        &format!(
                            "{}/{}: fault phase injects, recovers, and trips the watchdog",
                            scenario.id, ph.id
                        ),
                        ph.faults > 0 && ph.recoveries > 0 && !ph.breaches.is_empty(),
                        format!(
                            "{} faults, {} recoveries, {} breaches, {} dumps",
                            ph.faults,
                            ph.recoveries,
                            ph.breaches.len(),
                            ph.dumps.len()
                        ),
                    );
                }
            }
            report.push(scenario);
        }
        ctx.shape(
            "every destination of every epoch verifies its payload",
            all_verified,
            format!("{} scenarios x {} destinations", report.len(), CORES - 1),
        );
        ctx.shape(
            "every forensic dump window audits causally clean",
            !dump_audits.is_empty()
                && dump_audits.iter().all(|(_, checked, viol)| *viol == 0 && *checked > 0),
            dump_audits
                .iter()
                .map(|(stem, checked, viol)| format!("{stem}: {checked} checks, {viol} violations"))
                .collect::<Vec<_>>()
                .join("; "),
        );
        let total: u64 = report.iter().map(SoakScenario::epochs).sum();
        outln!(ctx, "# {total} epochs total; dumps only from fault-phase windows");

        ctx.artifact("BENCH_soak.json", soak_artifact(&report).render());
        ctx.artifact("results/SOAK.md", render_soak_markdown(&report));
        ctx.artifact("results/soak_metrics.txt", render_soak_openmetrics(&report));
    });
}
