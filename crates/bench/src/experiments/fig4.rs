//! Figure 4: MPB contention — (a) average and per-core spread of the
//! completion time of concurrent 128-cache-line gets from core 0's
//! MPB, (b) the same for concurrent 1-cache-line puts, as the number
//! of concurrent accessors grows.

use super::{outln, Sweep};
use crate::paper_chip;
use scc_model::ClosedQueue;
use scc_sim::measure_contention;

fn counts(quick: bool) -> &'static [usize] {
    if quick {
        &[1, 8, 24, 47]
    } else {
        &[1, 2, 4, 6, 8, 12, 16, 24, 32, 40, 47]
    }
}

const PANELS: [(&str, usize, bool, u32, &str); 2] = [
    ("Concurrent MPB get completion time (128 cache lines)", 128, false, 2, "get128"),
    ("Concurrent MPB put completion time (1 cache line)", 1, true, 50, "put1"),
];

pub(super) fn plan(sweep: &mut Sweep) {
    let counts = counts(sweep.quick);
    // One unit per (panel, accessor count): the simulator measurement
    // reduced to (avg, min, max). The queueing-model overlay is pure
    // arithmetic and stays in finalize.
    for (_, lines, puts, reps, tag) in PANELS {
        for &n in counts {
            sweep.value_unit_w(format!("{tag} n={n}"), (lines * n) as u64, move |_| {
                let cfg = paper_chip();
                let v = measure_contention(&cfg, n, lines, puts, reps).expect("sim");
                let us: Vec<f64> = v.iter().map(|t| t.as_us_f64()).collect();
                let avg = us.iter().sum::<f64>() / us.len() as f64;
                let min = us.iter().copied().fold(f64::INFINITY, f64::min);
                let max = us.iter().copied().fold(0.0f64, f64::max);
                (avg, min, max)
            });
        }
    }

    sweep.finalize(move |ctx, mut values| {
        // The closed-queueing bound model of scc-model (an extension: the
        // paper declares contention hard to model) overlays each panel.
        let get_model = ClosedQueue::get_scenario(128, 9.0, 0.010, 0.126, 0.005);
        let put_model = ClosedQueue {
            think_us: 0.069 + 0.136 + (0.126 + 2.0 * 9.0 * 0.005) - 0.018,
            service_us: 0.018,
        };
        for (title, _, _, _, tag) in PANELS {
            let model = if tag == "get128" { &get_model } else { &put_model };
            let labels = vec![
                "avg_us".to_string(),
                "min_us".to_string(),
                "max_us".to_string(),
                "model_us".to_string(),
            ];
            let mut rows = Vec::new();
            for &n in counts {
                let (avg, min, max) = values.next_as::<(f64, f64, f64)>();
                rows.push((n, vec![avg, min, max, model.cycle_estimate_us(n)]));
            }
            ctx.series(title, "accessors", &labels, &rows);
            for (n, cols) in &rows {
                ctx.row(format!("{tag} n={n} avg"), None, Some(cols[3]), cols[0], 0.05, "us");
            }

            // Shape checks mirroring Section 3.3's findings.
            let at = |n: usize| rows.iter().find(|r| r.0 == n).map(|r| r.1[0]);
            let single = at(1).expect("n=1 measured");
            if let Some(a24) = at(24) {
                ctx.shape(
                    &format!("{tag}: no measurable contention up to 24 accessors"),
                    a24 < single * 1.12,
                    format!("n=1 {single:.3} µs vs n=24 {a24:.3} µs"),
                );
            }
            let a47 = at(47).expect("n=47 measured");
            ctx.shape(
                &format!("{tag}: visible contention at 47 accessors"),
                a47 > single * 1.3,
                format!("n=1 {single:.3} µs vs n=47 {a47:.3} µs"),
            );
        }
        outln!(ctx, "# knee past 24 accessors, clear contention at 47 — as in Figure 4");
    });
}
