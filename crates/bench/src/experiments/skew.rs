//! Message journeys: per-destination delivery skew across the paper's
//! contention spectrum. One recorded 48-core broadcast per scenario —
//! the flat-tree extreme (k=47) that saturates the root port, the
//! paper's default operating point (k=7), and the binomial baseline —
//! reconstructed into a [`JourneyBook`] whose per-destination leg
//! dwells partition each delivery latency *exactly* (integer
//! picoseconds; re-checked as a shape claim on every run).
//!
//! The finalize step derives the skew digests (`results/SKEW.md`), the
//! versioned `BENCH_journeys.json` artifact, and one link-congestion
//! movie per scenario (`results/movie_<id>.txt`). The observatory only
//! writes these sidecars under `--journeys`; the rows and shape checks
//! join `BENCH_figures.json` unconditionally.

use super::{outln, Sweep};
use crate::{record_run, Scenario};
use oc_bcast::Algorithm;
use scc_hal::Time;
use scc_obs::{journeys_artifact, CongestionMovie, JourneyBook, SkewReport};
use scc_sim::SimParams;

/// Frames per congestion movie: enough to see the root-column burst
/// travel without drowning the text artifact.
const MOVIE_FRAMES: usize = 8;

/// `(stable id, scenario)` pairs; the id names the movie artifact.
fn scenarios(quick: bool) -> Vec<(&'static str, Scenario)> {
    let lines = if quick { 32 } else { 96 };
    vec![
        ("oc_k47", Scenario::new(Algorithm::oc_with_k(47), 48, lines)),
        ("oc_k7", Scenario::new(Algorithm::oc_with_k(7), 48, lines)),
        ("binomial", Scenario::new(Algorithm::Binomial, 48, lines)),
    ]
}

/// What one recorded scenario hands to finalize.
struct Traced {
    book: JourneyBook,
    movie: String,
}

pub(super) fn plan(sweep: &mut Sweep) {
    for (id, sc) in scenarios(sweep.quick) {
        sweep.value_unit_w(format!("journeys {id}"), sc.lines as u64, move |_| {
            let (events, _makespan) =
                record_run(&sc, SimParams::default()).expect("recorded broadcast");
            Traced {
                book: JourneyBook::from_events(&events),
                movie: CongestionMovie::from_events(&events, MOVIE_FRAMES).render(&sc.label),
            }
        });
    }

    sweep.finalize(move |ctx, mut values| {
        let scs = scenarios(ctx.quick);
        outln!(
            ctx,
            "# per-destination delivery skew, 48-core broadcasts ({} cache lines from C0)",
            scs[0].1.lines
        );
        let mut books: Vec<(String, JourneyBook)> = Vec::new();
        let mut skews: Vec<SkewReport> = Vec::new();
        for (id, sc) in &scs {
            let traced = values.next_as::<Traced>();
            let book = traced.book;

            // The exactness invariants this module exists to guard.
            let conserved = book.journeys.iter().all(|j| j.legs_total() == j.latency());
            ctx.shape(
                &format!("{id}: leg dwells partition every delivery latency"),
                conserved,
                format!("{} journeys, integer-ps conservation", book.journeys.len()),
            );
            let last = book.journeys.iter().map(|j| j.end).max().unwrap_or(Time::ZERO);
            ctx.shape(
                &format!("{id}: last delivery closes the makespan"),
                last == book.makespan,
                format!(
                    "last delivery {:.3} us, makespan {:.3} us",
                    last.as_us_f64(),
                    book.makespan.as_us_f64()
                ),
            );
            ctx.shape(
                &format!("{id}: every non-root core completes a journey"),
                book.journeys.len() >= sc.cores - 1,
                format!("{} journeys for {} cores", book.journeys.len(), sc.cores),
            );

            let skew = SkewReport::from_book(&sc.label, &book).expect("non-empty book");
            ctx.row(format!("{id} delivery p50"), None, None, skew.p50.as_us_f64(), 0.02, "us");
            ctx.row(format!("{id} delivery p99"), None, None, skew.p99.as_us_f64(), 0.02, "us");
            ctx.row(format!("{id} delivery max"), None, None, skew.max.as_us_f64(), 0.02, "us");
            outln!(
                ctx,
                "{id:<10} {:>4} journeys  p50 {:>9.3}  p99 {:>9.3}  max {:>9.3} us  \
                 straggler C{} ({})",
                skew.count,
                skew.p50.as_us_f64(),
                skew.p99.as_us_f64(),
                skew.max.as_us_f64(),
                skew.straggler.core.index(),
                skew.dominant_leg().map_or("matches median".to_string(), |(k, d)| format!(
                    "{} +{:.3} us",
                    k.name(),
                    d.as_us_f64()
                )),
            );

            ctx.artifact(format!("results/movie_{id}.txt"), traced.movie);
            books.push((id.to_string(), book));
            skews.push(skew);
        }
        outln!(ctx, "# every scenario: leg dwells sum exactly to delivery latency (integer ps)");
        ctx.artifact("BENCH_journeys.json", journeys_artifact(&books).render());
        ctx.artifact("results/SKEW.md", scc_obs::render_skew_markdown(&skews));
    });
}
