//! Figure 5: the k-ary message propagation tree and the binary
//! notification trees, printed for the paper's example (s = 0, P = 12,
//! k = 7) and for the full 48-core chip.

use super::{out, outln, ExpCtx, Sweep};
use oc_bcast::{KaryTree, NotifyGroup};
use scc_hal::CoreId;

/// Print one tree and return `(depth, cores seen across all levels)`.
fn print_tree(ctx: &mut ExpCtx, p: usize, k: usize, root: u8) -> (usize, usize) {
    let tree = KaryTree::new(p, k, CoreId(root));
    outln!(ctx, "# message propagation tree: P = {p}, k = {k}, source C{root}");
    let mut level: Vec<CoreId> = vec![tree.root()];
    let mut depth = 0;
    let mut seen = 0;
    while !level.is_empty() {
        let mut next = Vec::new();
        out!(ctx, "level {depth}:");
        for c in &level {
            out!(ctx, " {c}");
            seen += 1;
            next.extend(tree.children(*c));
        }
        outln!(ctx);
        level = next;
        depth += 1;
    }
    outln!(ctx, "# binary notification trees (parent → forwarded-to):");
    for c in (0..p).map(|i| CoreId(i as u8)) {
        if let Some(group) = NotifyGroup::of_parent(&tree, c, 2) {
            outln!(ctx, "  group of {c}:");
            for m in group.members() {
                let f = group.forwards(*m);
                if !f.is_empty() {
                    let list: Vec<String> = f.iter().map(|x| x.to_string()).collect();
                    outln!(ctx, "    {m} -> {}", list.join(", "));
                }
            }
        }
    }
    outln!(ctx);
    (depth, seen)
}

pub(super) fn plan(sweep: &mut Sweep) {
    // Pure tree printing — cheap enough to stay one unit.
    sweep.unit("trees", run);
}

fn run(ctx: &mut ExpCtx) {
    // The paper's figure.
    let (d12, seen12) = print_tree(ctx, 12, 7, 0);
    // The experimental configuration.
    let (d48, seen48) = print_tree(ctx, 48, 7, 0);

    ctx.row("levels P=12 k=7", None, Some(3.0), d12 as f64, 0.0, "levels");
    ctx.row("levels P=48 k=7", None, Some(3.0), d48 as f64, 0.0, "levels");
    ctx.shape(
        "every core appears exactly once in each propagation tree",
        seen12 == 12 && seen48 == 48,
        format!("P=12 covered {seen12}, P=48 covered {seen48}"),
    );
    ctx.shape(
        "k=7 reaches 48 cores in two forwarding hops (depth 2)",
        d12 == 3 && d48 == 3,
        format!("levels incl. root: P=12 -> {d12}, P=48 -> {d48}"),
    );
}
