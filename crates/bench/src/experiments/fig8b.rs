//! Figure 8b: *measured* broadcast throughput vs message size
//! (logarithmic x, 1 … 32768 cache lines = 1 MiB) — OC-Bcast
//! (k = 2, 7, 47) against the RCCE_comm scatter-allgather.

use super::{outln, Sweep};
use crate::{measure_bcast, paper_algorithms, paper_chip};
use oc_bcast::Algorithm;
use scc_hal::CoreId;
use scc_model::Predictor;

fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 96, 97, 1024, 4608]
    } else {
        vec![1, 4, 16, 64, 96, 97, 192, 384, 768, 1536, 3072, 4608, 8192, 16384, 32768]
    }
}

pub(super) fn plan(sweep: &mut Sweep) {
    let sizes = sizes(sweep.quick);
    let algs = paper_algorithms(Algorithm::ScatterAllgather);
    let (warmup, reps) = (0, 1); // deterministic simulator: one shot is exact

    // One unit per (algorithm, size); the 32768-line points dwarf the
    // 1-line ones, so cost = size keeps the schedule's tail short.
    for &alg in &algs {
        for &m in &sizes {
            sweep.value_unit_w(format!("{} m={m}", alg.label()), m as u64, move |_| {
                let cfg = paper_chip();
                measure_bcast(&cfg, alg, CoreId(0), m * 32, warmup, reps)
                    .expect("sim")
                    .throughput_mb_s
            });
        }
    }

    sweep.finalize(move |ctx, mut values| {
        let labels: Vec<String> = algs.iter().map(|a| a.label()).collect();
        let columns: Vec<Vec<f64>> =
            algs.iter().map(|_| sizes.iter().map(|_| values.next_as::<f64>()).collect()).collect();
        let rows: Vec<(usize, Vec<f64>)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, columns.iter().map(|c| c[i]).collect()))
            .collect();
        ctx.series(
            "Figure 8b — measured broadcast throughput (MB/s), P = 48, log-x",
            "cache_lines",
            &labels,
            &rows,
        );

        // Structured rows; for the OC variants the contention-free model
        // turns its latency into a per-size throughput prediction.
        let predictor = Predictor::paper();
        for (m, cols) in &rows {
            for (label, sim) in labels.iter().zip(cols) {
                let model = match label.as_str() {
                    "k=2" => Some(*m as f64 * 32.0 / predictor.oc_latency_us(48, *m, 2)),
                    "k=7" => Some(*m as f64 * 32.0 / predictor.oc_latency_us(48, *m, 7)),
                    "k=47" => Some(*m as f64 * 32.0 / predictor.oc_latency_us(48, *m, 47)),
                    _ => None, // no closed-form per-size s-ag latency
                };
                ctx.row(format!("throughput {label} m={m}"), None, model, *sim, 0.02, "MB/s");
            }
        }

        let col = |label: &str| labels.iter().position(|l| l == label).expect("column");
        let at = |m: usize, label: &str| rows.iter().find(|r| r.0 == m).expect("row").1[col(label)];

        // Section 6.2.2 claims.
        let big = *sizes.last().expect("sizes");
        let ratio = at(big, "k=7") / at(big, "s-ag");
        outln!(
            ctx,
            "# peak: k=7 {:.2} MB/s vs s-ag {:.2} MB/s — {ratio:.2}x (paper: almost 3x)",
            at(big, "k=7"),
            at(big, "s-ag")
        );
        ctx.shape(
            "OC-Bcast clearly dominates scatter-allgather at peak",
            ratio > 2.0,
            format!(
                "k=7 {:.2} MB/s vs s-ag {:.2} MB/s ({ratio:.2}x)",
                at(big, "k=7"),
                at(big, "s-ag")
            ),
        );

        // The 97-cache-line dip: the second, 1-line chunk adds a pipeline
        // traversal without adding payload. On the real SCC the per-chunk
        // software overhead made this a ~25% drop; the simulator's chunk
        // overhead is the (much smaller) modeled flag traffic, so the dip
        // is visible but shallow — strongest for k = 47, where the extra
        // chunk costs the root another 47-flag polling round.
        for k in ["k=7", "k=47"] {
            let dip = at(97, k) / at(96, k);
            outln!(
                ctx,
                "# 97-CL dip ({k}): {:.2} MB/s vs {:.2} MB/s at 96 CL (ratio {dip:.3})",
                at(97, k),
                at(96, k)
            );
            ctx.shape(
                &format!("97 CL never beats 96 CL per byte ({k})"),
                dip <= 1.0,
                format!("ratio {dip:.3}"),
            );
        }
        ctx.shape(
            "the chunk-boundary dip is visible at k=47",
            at(97, "k=47") / at(96, "k=47") < 0.99,
            format!("ratio {:.3}", at(97, "k=47") / at(96, "k=47")),
        );
    });
}
