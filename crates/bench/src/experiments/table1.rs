//! Table 1: recover the eight model parameters from microbenchmarks on
//! the simulated chip and compare with the values the authors measured
//! on real silicon.

use super::{outln, Sweep};
use crate::paper_chip;
use scc_model::{fit_params, FitSamples, ModelParams};
use scc_sim::{measure_p2p, P2pKind};

const REPS: u32 = 3;
const SIZES: [usize; 4] = [1, 4, 8, 16];
const MPB_DISTS: [u32; 4] = [1, 3, 5, 9];
const MEM_DISTS: [u32; 3] = [1, 2, 4];

pub(super) fn plan(sweep: &mut Sweep) {
    // Raw measurements fan out as units; all sample algebra (the C_r(1)
    // anchor, the per-line differences) and the least-squares fit run in
    // finalize, where every sample lands in `FitSamples` in exactly the
    // sequential push order.
    for d in 1..=9u32 {
        sweep.value_unit(format!("mpb_read d={d}"), move |_| {
            measure_p2p(&paper_chip(), P2pKind::GetMpb, 1, d, REPS).expect("sim").as_us_f64()
        });
    }
    sweep.value_unit("mpb 2cl d=1", |_| {
        measure_p2p(&paper_chip(), P2pKind::GetMpb, 2, 1, REPS).expect("sim").as_us_f64()
    });
    for d in 1..=4u32 {
        sweep.value_unit(format!("mem d={d}"), move |_| {
            let cfg = paper_chip();
            let g1 = measure_p2p(&cfg, P2pKind::GetMem, 1, d, REPS).expect("sim").as_us_f64();
            let g2 = measure_p2p(&cfg, P2pKind::GetMem, 2, d, REPS).expect("sim").as_us_f64();
            let p1 = measure_p2p(&cfg, P2pKind::PutMem, 1, d, REPS).expect("sim").as_us_f64();
            let p2 = measure_p2p(&cfg, P2pKind::PutMem, 2, d, REPS).expect("sim").as_us_f64();
            (g1, g2, p1, p2)
        });
    }
    for m in SIZES {
        sweep.value_unit_w(format!("ops m={m}"), m as u64, move |_| {
            let cfg = paper_chip();
            let mut put_mpb = Vec::new();
            let mut get_mpb = Vec::new();
            for d in MPB_DISTS {
                put_mpb
                    .push(measure_p2p(&cfg, P2pKind::PutMpb, m, d, REPS).expect("sim").as_us_f64());
                get_mpb
                    .push(measure_p2p(&cfg, P2pKind::GetMpb, m, d, REPS).expect("sim").as_us_f64());
            }
            let mut put_mem = Vec::new();
            let mut get_mem = Vec::new();
            for d in MEM_DISTS {
                put_mem
                    .push(measure_p2p(&cfg, P2pKind::PutMem, m, d, REPS).expect("sim").as_us_f64());
                get_mem
                    .push(measure_p2p(&cfg, P2pKind::GetMem, m, d, REPS).expect("sim").as_us_f64());
            }
            (put_mpb, get_mpb, put_mem, get_mem)
        });
    }

    sweep.finalize(|ctx, mut values| {
        let mut s = FitSamples::default();

        // Single-line primitives are not directly observable (a lone read
        // is always part of an op), so derive them the way the authors do:
        // from 1-line ops at varying distance. C_get_mpb(1, d) = o_get +
        // C_r(d) + C_w(1); differencing over d isolates the mesh slope, and
        // the 1-line put/get samples pin the rest.
        for d in 1..=9u32 {
            s.mpb_read.push((d, values.next_as::<f64>()));
        }
        // Anchor: the raw samples above are C_get(1, d) = const + C_r(d);
        // turn them into pseudo C_r(d) samples by removing the constant
        // measured at the smallest distance (the fit only cares about the
        // slope and a consistent intercept, which we re-derive from the op
        // samples below anyway).
        let c11 = s.mpb_read[0].1;
        // C_r(1) on the simulator's contention-free chip is o_mpb + 2 Lhop;
        // compute it from a 2-line vs 1-line difference at d = 1:
        let c2 = values.next_as::<f64>();
        let per_line_d1 = c2 - c11; // C_r(1) + C_w(1)
        let c_r_1 = per_line_d1 / 2.0; // symmetric at d = 1
        for e in &mut s.mpb_read {
            e.1 = e.1 - c11 + c_r_1;
        }

        // Off-chip read/write per line, from put/get size differences at
        // each memory-controller distance.
        for d in 1..=4u32 {
            let (g1, g2, p1, p2) = values.next_as::<(f64, f64, f64, f64)>();
            // per-line = C_r_mpb(1) + C_w_mem(d)
            s.mem_write.push((d, g2 - g1 - c_r_1));
            // per-line = C_r_mem(d) + C_w_mpb(1); C_w(1) == C_r(1) here.
            s.mem_read.push((d, p2 - p1 - c_r_1));
        }

        // Op-overhead samples.
        for m in SIZES {
            let (put_mpb, get_mpb, put_mem, get_mem) =
                values.next_as::<(Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)>();
            for (i, d) in MPB_DISTS.into_iter().enumerate() {
                s.put_mpb.push((m, d, put_mpb[i]));
                s.get_mpb.push((m, d, get_mpb[i]));
            }
            for (i, d) in MEM_DISTS.into_iter().enumerate() {
                s.put_mem.push((m, d, 1, put_mem[i]));
                // GetMem keeps the MPB side local: d_src = 1, memory at d.
                s.get_mem.push((m, 1, d, get_mem[i]));
            }
        }

        let (fitted, rms) = fit_params(&s).expect("samples cover every category");
        let paper = ModelParams::paper();

        outln!(ctx, "# Table 1 — model parameters (µs): simulator-fitted vs paper");
        outln!(ctx, "# primitive-fit RMS residual: {rms:.6} µs");
        outln!(ctx, "{:<12} {:>10} {:>10} {:>8}", "parameter", "fitted", "paper", "Δ%");
        let rows = [
            ("Lhop", fitted.l_hop, paper.l_hop),
            ("o_mpb", fitted.o_mpb, paper.o_mpb),
            ("o_mem_w", fitted.o_mem_w, paper.o_mem_w),
            ("o_mem_r", fitted.o_mem_r, paper.o_mem_r),
            ("o_mpb_put", fitted.o_mpb_put, paper.o_mpb_put),
            ("o_mpb_get", fitted.o_mpb_get, paper.o_mpb_get),
            ("o_mem_put", fitted.o_mem_put, paper.o_mem_put),
            ("o_mem_get", fitted.o_mem_get, paper.o_mem_get),
        ];
        for (name, f, p) in rows {
            outln!(ctx, "{name:<12} {f:>10.4} {p:>10.4} {:>7.1}%", (f - p) / p * 100.0);
            ctx.row(name, Some(p), None, f, 0.02, "us");
        }
        // Relative tolerance is meaningless for a ~0 residual; the gate's
        // `max(|old|, 1e-9)` floor makes 1.0 an absolute 1e-9 µs band.
        ctx.row("rms", None, None, rms, 1.0, "us");
        ctx.shape(
            "fitted parameters are physical",
            fitted.is_plausible(),
            format!(
                "Lhop {:.4}, o_mpb {:.4}, o_mem_w {:.4}",
                fitted.l_hop, fitted.o_mpb, fitted.o_mem_w
            ),
        );
        ctx.shape(
            "primitive fit is essentially exact on the noise-free simulator",
            rms < 1e-3,
            format!("rms residual {rms:.6} µs"),
        );
        ctx.shape(
            "every fitted parameter lands within 5% of the paper's Table 1",
            rows.iter().all(|(_, f, p)| ((f - p) / p).abs() < 0.05),
            rows.iter()
                .map(|(n, f, p)| format!("{n} {:.1}%", (f - p) / p * 100.0))
                .collect::<Vec<_>>()
                .join(", "),
        );
    });
}
