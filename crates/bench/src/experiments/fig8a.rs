//! Figure 8a: *measured* broadcast latency vs message size on the
//! 48-core chip — OC-Bcast (k = 2, 7, 47) against the RCCE_comm
//! binomial tree, sizes up to 2·M_oc = 192 cache lines.

use super::{outln, Sweep};
use crate::{measure_bcast, paper_algorithms, paper_chip};
use oc_bcast::Algorithm;
use scc_hal::CoreId;
use scc_model::Predictor;

fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 32, 96, 192]
    } else {
        vec![1, 8, 16, 32, 48, 64, 80, 96, 97, 112, 128, 144, 160, 176, 192]
    }
}

pub(super) fn plan(sweep: &mut Sweep) {
    let sizes = sizes(sweep.quick);
    let algs = paper_algorithms(Algorithm::Binomial);
    let (warmup, reps) = (1, 3);

    // One unit per (algorithm, size) point, weighted by size so the
    // pool schedules the heavy large-message runs first.
    for &alg in &algs {
        for &m in &sizes {
            sweep.value_unit_w(format!("{} m={m}", alg.label()), m as u64, move |_| {
                let cfg = paper_chip();
                measure_bcast(&cfg, alg, CoreId(0), m * 32, warmup, reps).expect("sim").latency_us
            });
        }
    }

    sweep.finalize(move |ctx, mut values| {
        let labels: Vec<String> = algs.iter().map(|a| a.label()).collect();
        let columns: Vec<Vec<f64>> =
            algs.iter().map(|_| sizes.iter().map(|_| values.next_as::<f64>()).collect()).collect();
        let rows: Vec<(usize, Vec<f64>)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, columns.iter().map(|c| c[i]).collect()))
            .collect();
        ctx.series(
            "Figure 8a — measured broadcast latency (µs), P = 48",
            "cache_lines",
            &labels,
            &rows,
        );

        // Structured rows with the contention-free model's prediction
        // alongside each simulator measurement.
        let predictor = Predictor::paper();
        for (m, cols) in &rows {
            for (label, sim) in labels.iter().zip(cols) {
                let model = match label.as_str() {
                    "k=2" => Some(predictor.oc_latency_us(48, *m, 2)),
                    "k=7" => Some(predictor.oc_latency_us(48, *m, 7)),
                    "k=47" => Some(predictor.oc_latency_us(48, *m, 47)),
                    "binomial" => Some(predictor.binomial_latency_us(48, *m)),
                    _ => None,
                };
                ctx.row(format!("latency {label} m={m}"), None, model, *sim, 0.02, "us");
            }
        }

        // Section 6.2.1 claims.
        let col = |label: &str| labels.iter().position(|l| l == label).expect("column");
        let at = |m: usize, label: &str| rows.iter().find(|r| r.0 == m).expect("row").1[col(label)];
        let improvement = 1.0 - at(1, "k=7") / at(1, "binomial");
        outln!(
            ctx,
            "# 1-CL latency: k=7 {:.2} µs vs binomial {:.2} µs — {:.0}% improvement (paper: ≥27%)",
            at(1, "k=7"),
            at(1, "binomial"),
            improvement * 100.0
        );
        ctx.shape(
            "1-CL latency improves ≥27% over the binomial tree",
            improvement >= 0.27,
            format!(
                "k=7 {:.2} µs vs binomial {:.2} µs ({:.0}%)",
                at(1, "k=7"),
                at(1, "binomial"),
                improvement * 100.0
            ),
        );
        if !ctx.quick {
            let k7_gain_over_k2 = 1.0 - at(144, "k=7") / at(144, "k=2");
            outln!(
                ctx,
                "# 96–192 CL: k=7 is {:.0}% better than k=2 (paper: ~25%)",
                k7_gain_over_k2 * 100.0
            );
            ctx.shape(
                "k=7 clearly beats k=2 at 144 CL",
                k7_gain_over_k2 > 0.10,
                format!("{:.0}% gain", k7_gain_over_k2 * 100.0),
            );
            // The gap to binomial grows with size.
            let gap1 = at(1, "binomial") - at(1, "k=7");
            let gap192 = at(192, "binomial") - at(192, "k=7");
            ctx.shape(
                "the gap to binomial grows with message size",
                gap192 > gap1,
                format!("gap at 1 CL {gap1:.2} µs, at 192 CL {gap192:.2} µs"),
            );
        }
    });
}
