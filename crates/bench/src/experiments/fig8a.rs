//! Figure 8a: *measured* broadcast latency vs message size on the
//! 48-core chip — OC-Bcast (k = 2, 7, 47) against the RCCE_comm
//! binomial tree, sizes up to 2·M_oc = 192 cache lines.

use super::{outln, ExpCtx};
use crate::{paper_algorithms, paper_chip, sweep_sizes};
use oc_bcast::Algorithm;
use scc_model::Predictor;

pub(super) fn run(ctx: &mut ExpCtx) {
    let cfg = paper_chip();
    let sizes: Vec<usize> = if ctx.quick {
        vec![1, 32, 96, 192]
    } else {
        vec![1, 8, 16, 32, 48, 64, 80, 96, 97, 112, 128, 144, 160, 176, 192]
    };
    let algs = paper_algorithms(Algorithm::Binomial);
    let (warmup, reps) = (1, 3);

    let labels: Vec<String> = algs.iter().map(|a| a.label()).collect();
    let mut columns = Vec::new();
    for &alg in &algs {
        let series = sweep_sizes(&cfg, alg, &sizes, warmup, reps).expect("sim");
        columns.push(series);
    }
    let rows: Vec<(usize, Vec<f64>)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &m)| (m, columns.iter().map(|c| c[i].1.latency_us).collect()))
        .collect();
    ctx.series(
        "Figure 8a — measured broadcast latency (µs), P = 48",
        "cache_lines",
        &labels,
        &rows,
    );

    // Structured rows with the contention-free model's prediction
    // alongside each simulator measurement.
    let predictor = Predictor::paper();
    for (m, cols) in &rows {
        for (label, sim) in labels.iter().zip(cols) {
            let model = match label.as_str() {
                "k=2" => Some(predictor.oc_latency_us(48, *m, 2)),
                "k=7" => Some(predictor.oc_latency_us(48, *m, 7)),
                "k=47" => Some(predictor.oc_latency_us(48, *m, 47)),
                "binomial" => Some(predictor.binomial_latency_us(48, *m)),
                _ => None,
            };
            ctx.row(format!("latency {label} m={m}"), None, model, *sim, 0.02, "us");
        }
    }

    // Section 6.2.1 claims.
    let col = |label: &str| labels.iter().position(|l| l == label).expect("column");
    let at = |m: usize, label: &str| rows.iter().find(|r| r.0 == m).expect("row").1[col(label)];
    let improvement = 1.0 - at(1, "k=7") / at(1, "binomial");
    outln!(
        ctx,
        "# 1-CL latency: k=7 {:.2} µs vs binomial {:.2} µs — {:.0}% improvement (paper: ≥27%)",
        at(1, "k=7"),
        at(1, "binomial"),
        improvement * 100.0
    );
    ctx.shape(
        "1-CL latency improves ≥27% over the binomial tree",
        improvement >= 0.27,
        format!(
            "k=7 {:.2} µs vs binomial {:.2} µs ({:.0}%)",
            at(1, "k=7"),
            at(1, "binomial"),
            improvement * 100.0
        ),
    );
    if !ctx.quick {
        let k7_gain_over_k2 = 1.0 - at(144, "k=7") / at(144, "k=2");
        outln!(
            ctx,
            "# 96–192 CL: k=7 is {:.0}% better than k=2 (paper: ~25%)",
            k7_gain_over_k2 * 100.0
        );
        ctx.shape(
            "k=7 clearly beats k=2 at 144 CL",
            k7_gain_over_k2 > 0.10,
            format!("{:.0}% gain", k7_gain_over_k2 * 100.0),
        );
        // The gap to binomial grows with size.
        let gap1 = at(1, "binomial") - at(1, "k=7");
        let gap192 = at(192, "binomial") - at(192, "k=7");
        ctx.shape(
            "the gap to binomial grows with message size",
            gap192 > gap1,
            format!("gap at 1 CL {gap1:.2} µs, at 192 CL {gap192:.2} µs"),
        );
    }
}
