//! Section 3.3's mesh-contention experiment: load the (2,2)–(3,2) link
//! with traffic from every other core and measure whether a probe get
//! across that link slows down. The paper found no measurable drop —
//! "at the current scale, the network cannot be a source of
//! contention."

use super::{outln, Sweep};
use crate::paper_chip;
use scc_sim::measure_link_stress;

pub(super) fn plan(sweep: &mut Sweep) {
    // One unit per probe size; each writes its own lines, so the merge
    // in declaration order reproduces the sequential text exactly.
    for lines in [16usize, 128] {
        sweep.unit(format!("probe {lines}CL"), move |ctx| {
            let cfg = paper_chip();
            let (loaded, idle) = measure_link_stress(&cfg, lines, 3).expect("sim");
            let ratio = loaded.as_us_f64() / idle.as_us_f64();
            outln!(
                ctx,
                "{lines:>4} CL probe: idle {:>8.3} µs, loaded {:>8.3} µs, ratio {ratio:.4}",
                idle.as_us_f64(),
                loaded.as_us_f64()
            );
            ctx.row(format!("probe {lines}CL idle"), None, None, idle.as_us_f64(), 0.02, "us");
            ctx.row(format!("probe {lines}CL loaded"), None, None, loaded.as_us_f64(), 0.02, "us");
            ctx.row(format!("probe {lines}CL slowdown"), None, None, ratio, 0.05, "x");
            ctx.shape(
                &format!("mesh does not contend under core-driven load ({lines} CL probe)"),
                ratio < 1.05,
                format!("loaded/idle ratio {ratio:.4}"),
            );
        });
    }
    sweep.finalize(|ctx, _values| {
        outln!(ctx, "# no measurable mesh contention — matches Section 3.3");
    });
}
