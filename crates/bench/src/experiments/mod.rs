//! The typed experiment registry behind the `observatory` harness.
//!
//! Every paper figure/table is one [`Experiment`]: a function that
//! writes the classic human-readable text (byte-identical to what the
//! standalone binary prints) into an [`ExpCtx`] *and* records the
//! structured side — [`ExperimentRow`]s for the drift gate and
//! [`ShapeCheck`]s for the paper's qualitative claims. The runner
//! wraps each experiment with wall-clock and engine-telemetry
//! deltas so `BENCH_figures.json` carries per-experiment self-metrics.

use scc_obs::{ExperimentReport, ExperimentRow, SelfMetrics, ShapeCheck};

mod ablation;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig8a;
mod fig8b;
mod heatmap;
mod linkstress;
mod table1;
mod table2;
mod whatif;

pub use whatif::whatif_artifact;

/// Append a formatted line (or a bare newline) to the experiment's
/// text buffer — the in-registry twin of `println!`.
macro_rules! outln {
    ($ctx:expr) => {
        $ctx.out.push('\n')
    };
    ($ctx:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($ctx.out, $($arg)*);
    }};
}
/// `print!` twin of [`outln!`].
macro_rules! out {
    ($ctx:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($ctx.out, $($arg)*);
    }};
}
pub(crate) use {out, outln};

/// Mutable context an experiment fills in: the legacy text output plus
/// the structured rows and shape checks.
pub struct ExpCtx {
    /// Reduced sweeps (`SCC_BENCH_QUICK=1` / `observatory --quick`).
    pub quick: bool,
    /// The text the standalone binary would print, verbatim.
    pub out: String,
    /// Structured measurement points for the drift gate.
    pub rows: Vec<ExperimentRow>,
    /// The paper's qualitative claims, evaluated on this run.
    pub shapes: Vec<ShapeCheck>,
    /// Sidecar files the experiment wants written next to
    /// `BENCH_figures.json`: `(relative path, contents)`. The
    /// observatory writes them after the run; standalone binaries
    /// ignore them.
    pub artifacts: Vec<(String, String)>,
}

impl ExpCtx {
    pub fn new(quick: bool) -> ExpCtx {
        ExpCtx {
            quick,
            out: String::new(),
            rows: Vec::new(),
            shapes: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Queue a sidecar artifact for the observatory to write.
    pub fn artifact(&mut self, path: impl Into<String>, contents: String) {
        self.artifacts.push((path.into(), contents));
    }

    /// Record one measured point.
    pub fn row(
        &mut self,
        point: impl Into<String>,
        paper_value: Option<f64>,
        model_prediction: Option<f64>,
        sim_measured: f64,
        tolerance: f64,
        unit: &str,
    ) {
        self.rows.push(ExperimentRow {
            point: point.into(),
            paper_value,
            model_prediction,
            sim_measured,
            tolerance,
            unit: unit.to_string(),
        });
    }

    /// Evaluate and record one shape claim; returns `pass` so callers
    /// can chain.
    pub fn shape(&mut self, name: &str, pass: bool, detail: String) -> bool {
        self.shapes.push(ShapeCheck::new(name, pass, detail));
        pass
    }

    /// [`crate::write_series`] into this context's text buffer.
    pub fn series(
        &mut self,
        title: &str,
        x_label: &str,
        col_labels: &[String],
        rows: &[(usize, Vec<f64>)],
    ) {
        crate::write_series(&mut self.out, title, x_label, col_labels, rows);
    }
}

/// One registered experiment.
pub struct Experiment {
    /// Registry id — also the wrapper binary's name (`fig3`, …).
    pub id: &'static str,
    /// Human title used in `results/CONFORMANCE.md`.
    pub title: &'static str,
    pub run: fn(&mut ExpCtx),
}

/// Every experiment the observatory knows, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment { id: "table1", title: "Table 1 — fitted model parameters", run: table1::run },
        Experiment {
            id: "fig3",
            title: "Figure 3 — put/get completion time vs distance",
            run: fig3::run,
        },
        Experiment { id: "fig4", title: "Figure 4 — MPB contention", run: fig4::run },
        Experiment {
            id: "fig5",
            title: "Figure 5 — propagation and notification trees",
            run: fig5::run,
        },
        Experiment { id: "fig6", title: "Figure 6 — modeled broadcast latency", run: fig6::run },
        Experiment { id: "table2", title: "Table 2 — modeled peak throughput", run: table2::run },
        Experiment {
            id: "fig8a",
            title: "Figure 8a — measured broadcast latency",
            run: fig8a::run,
        },
        Experiment {
            id: "fig8b",
            title: "Figure 8b — measured broadcast throughput",
            run: fig8b::run,
        },
        Experiment {
            id: "linkstress",
            title: "Section 3.3 — mesh link stress",
            run: linkstress::run,
        },
        Experiment { id: "ablation", title: "Design-choice ablations", run: ablation::run },
        Experiment {
            id: "heatmap",
            title: "Section 5 — per-link mesh occupancy heatmaps",
            run: heatmap::run,
        },
        Experiment {
            id: "whatif",
            title: "Causal what-if profiles — cost-class sensitivity",
            run: whatif::run,
        },
    ]
}

/// Run one experiment, wrapping it with wall-clock and engine
/// telemetry. Returns the structured report, the legacy text, and any
/// sidecar artifacts the experiment queued.
pub fn run_experiment_full(
    exp: &Experiment,
    quick: bool,
) -> (ExperimentReport, String, Vec<(String, String)>) {
    let mut ctx = ExpCtx::new(quick);
    let wall = std::time::Instant::now();
    let before = scc_sim::telemetry::snapshot();
    (exp.run)(&mut ctx);
    let delta = scc_sim::telemetry::snapshot().since(&before);
    let metrics = SelfMetrics {
        wall_s: wall.elapsed().as_secs_f64(),
        sim_runs: delta.runs,
        sim_events: delta.events,
        heap_pushes: delta.heap_pushes,
        coalesced_steps: delta.coalesced_steps,
    };
    let report = ExperimentReport {
        id: exp.id.to_string(),
        title: exp.title.to_string(),
        rows: ctx.rows,
        shapes: ctx.shapes,
        metrics,
    };
    (report, ctx.out, ctx.artifacts)
}

/// [`run_experiment_full`] without the artifact channel — the form the
/// standalone binaries and most tests use.
pub fn run_experiment(exp: &Experiment, quick: bool) -> (ExperimentReport, String) {
    let (report, out, _artifacts) = run_experiment_full(exp, quick);
    (report, out)
}

/// Entry point of the thin wrapper binaries: run the experiment, print
/// its classic text, and die (like the old inline `assert!`s did) if
/// any paper shape claim failed.
pub fn run_standalone(id: &str) {
    let exp = registry()
        .into_iter()
        .find(|e| e.id == id)
        .unwrap_or_else(|| panic!("unknown experiment `{id}`"));
    let (report, out) = run_experiment(&exp, crate::quick());
    print!("{out}");
    for s in &report.shapes {
        assert!(s.pass, "[{id}] shape check `{}` failed: {}", s.name, s.detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_stable() {
        let reg = registry();
        let ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        for (i, id) in ids.iter().enumerate() {
            assert!(!ids[..i].contains(id), "duplicate id {id}");
        }
        for id in ["fig3", "fig8b", "table1", "table2", "linkstress", "ablation", "heatmap"] {
            assert!(ids.contains(&id), "missing {id}");
        }
    }

    #[test]
    fn run_experiment_attaches_metrics_and_text() {
        let reg = registry();
        let fig5 = reg.iter().find(|e| e.id == "fig5").unwrap();
        let (report, out) = run_experiment(fig5, true);
        assert_eq!(report.id, "fig5");
        assert!(!out.is_empty());
        assert!(report.shapes_pass(), "{:?}", report.shapes);
        assert!(report.metrics.wall_s > 0.0);
    }
}
