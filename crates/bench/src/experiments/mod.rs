//! The typed experiment registry behind the `observatory` harness.
//!
//! Every paper figure/table is one [`Experiment`]: a *plan* function
//! that describes the experiment as a [`Sweep`] — an ordered list of
//! independent measurement [`Unit`]s plus one finalize step that turns
//! the units' values into the classic human-readable text
//! (byte-identical to what the standalone binary prints), the
//! structured [`ExperimentRow`]s for the drift gate, and the
//! [`ShapeCheck`]s for the paper's qualitative claims.
//!
//! Expressing sweeps as data is what makes the parallel runner
//! (`crate::runner`) possible: units carry no ordering dependencies, so
//! they can execute on any host thread in any order, and the merge —
//! unit outputs concatenated in declaration order, then finalize —
//! reconstructs exactly the sequential output. Determinism of the
//! artifacts follows from determinism of the simulator: a unit's value
//! depends only on its own configuration, never on when or where it
//! ran.
//!
//! Each unit is individually metered (its own wall time plus the engine
//! counters of exactly the `run_spmd` calls it made, via the
//! thread-local telemetry scope), so per-experiment [`SelfMetrics`]
//! stay exact even when experiments interleave across threads.

use scc_obs::{ExperimentReport, ExperimentRow, SelfMetrics, ShapeCheck};
use std::any::Any;

mod ablation;
mod audit;
mod faults;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig8a;
mod fig8b;
mod heatmap;
mod linkstress;
mod skew;
mod soak;
mod table1;
mod table2;
mod tune;
mod whatif;

pub use whatif::whatif_artifact;

/// Append a formatted line (or a bare newline) to the experiment's
/// text buffer — the in-registry twin of `println!`.
macro_rules! outln {
    ($ctx:expr) => {
        $ctx.out.push('\n')
    };
    ($ctx:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($ctx.out, $($arg)*);
    }};
}
/// `print!` twin of [`outln!`].
macro_rules! out {
    ($ctx:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($ctx.out, $($arg)*);
    }};
}
pub(crate) use {out, outln};

/// Mutable context a sweep unit (or finalize step) fills in: the legacy
/// text output plus the structured rows and shape checks.
pub struct ExpCtx {
    /// Reduced sweeps (`SCC_BENCH_QUICK=1` / `observatory --quick`).
    pub quick: bool,
    /// The text the standalone binary would print, verbatim.
    pub out: String,
    /// Structured measurement points for the drift gate.
    pub rows: Vec<ExperimentRow>,
    /// The paper's qualitative claims, evaluated on this run.
    pub shapes: Vec<ShapeCheck>,
    /// Sidecar files the experiment wants written next to
    /// `BENCH_figures.json`: `(relative path, contents)`. The
    /// observatory writes them after the run; standalone binaries
    /// ignore them.
    pub artifacts: Vec<(String, String)>,
}

impl ExpCtx {
    pub fn new(quick: bool) -> ExpCtx {
        ExpCtx {
            quick,
            out: String::new(),
            rows: Vec::new(),
            shapes: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Queue a sidecar artifact for the observatory to write.
    pub fn artifact(&mut self, path: impl Into<String>, contents: String) {
        self.artifacts.push((path.into(), contents));
    }

    /// Record one measured point.
    pub fn row(
        &mut self,
        point: impl Into<String>,
        paper_value: Option<f64>,
        model_prediction: Option<f64>,
        sim_measured: f64,
        tolerance: f64,
        unit: &str,
    ) {
        self.rows.push(ExperimentRow {
            point: point.into(),
            paper_value,
            model_prediction,
            sim_measured,
            tolerance,
            unit: unit.to_string(),
        });
    }

    /// Evaluate and record one shape claim; returns `pass` so callers
    /// can chain.
    pub fn shape(&mut self, name: &str, pass: bool, detail: String) -> bool {
        self.shapes.push(ShapeCheck::new(name, pass, detail));
        pass
    }

    /// [`crate::write_series`] into this context's text buffer.
    pub fn series(
        &mut self,
        title: &str,
        x_label: &str,
        col_labels: &[String],
        rows: &[(usize, Vec<f64>)],
    ) {
        crate::write_series(&mut self.out, title, x_label, col_labels, rows);
    }
}

/// Type-erased value a measurement unit hands to its sweep's finalize
/// step.
pub type UnitValue = Box<dyn Any + Send>;

/// Boxed unit body: writes into its own [`ExpCtx`], may return a value.
pub type UnitFn = Box<dyn FnOnce(&mut ExpCtx) -> Option<UnitValue> + Send>;

/// Boxed finalize step: consumes the units' values in declaration order.
pub type FinalizeFn = Box<dyn FnOnce(&mut ExpCtx, Values) + Send>;

/// One independently schedulable piece of an experiment: a closure that
/// may write output into its own [`ExpCtx`] and may return a value for
/// the finalize step. Units of one sweep must be mutually independent —
/// the runner may execute them in any order, on any thread.
pub struct Unit {
    /// Unique (within the sweep) stable key; merge order is declaration
    /// order, the key exists for debugging and duplicate detection.
    pub(crate) key: String,
    /// Relative weight for longest-task-first scheduling.
    pub(crate) cost: u64,
    pub(crate) run: UnitFn,
}

/// An experiment described as data: ordered units plus a finalize step.
pub struct Sweep {
    /// Reduced sweeps (`SCC_BENCH_QUICK=1` / `observatory --quick`).
    pub quick: bool,
    pub(crate) units: Vec<Unit>,
    pub(crate) finalize: Option<FinalizeFn>,
}

impl Sweep {
    pub fn new(quick: bool) -> Sweep {
        Sweep { quick, units: Vec::new(), finalize: None }
    }

    fn push(&mut self, key: String, cost: u64, run: UnitFn) {
        assert!(!self.units.iter().any(|u| u.key == key), "duplicate unit key `{key}`");
        self.units.push(Unit { key, cost, run });
    }

    /// Add a self-contained unit: it writes its own output and returns
    /// no value (its text/rows/shapes merge in declaration order).
    pub fn unit(&mut self, key: impl Into<String>, f: impl FnOnce(&mut ExpCtx) + Send + 'static) {
        self.push(
            key.into(),
            1,
            Box::new(move |ctx| {
                f(ctx);
                None
            }),
        );
    }

    /// Add a measurement unit whose value the finalize step consumes
    /// (in declaration order, via [`Values::next_as`]).
    pub fn value_unit<T: Send + 'static>(
        &mut self,
        key: impl Into<String>,
        f: impl FnOnce(&mut ExpCtx) -> T + Send + 'static,
    ) {
        self.value_unit_w(key, 1, f);
    }

    /// [`Self::value_unit`] with an explicit scheduling weight — use
    /// when units of one sweep differ wildly in runtime (e.g. message
    /// size in cache lines).
    pub fn value_unit_w<T: Send + 'static>(
        &mut self,
        key: impl Into<String>,
        cost: u64,
        f: impl FnOnce(&mut ExpCtx) -> T + Send + 'static,
    ) {
        self.push(key.into(), cost, Box::new(move |ctx| Some(Box::new(f(ctx)) as UnitValue)));
    }

    /// Set the finalize step: runs after every unit, receives the
    /// units' values in declaration order, and its output merges last.
    pub fn finalize(&mut self, f: impl FnOnce(&mut ExpCtx, Values) + Send + 'static) {
        assert!(self.finalize.is_none(), "a sweep has exactly one finalize step");
        self.finalize = Some(Box::new(f));
    }
}

/// The values the measurement units produced, in declaration order.
pub struct Values {
    items: std::vec::IntoIter<(String, Option<UnitValue>)>,
}

impl Values {
    /// Take the next value (skipping valueless units) as a `T`. Panics
    /// with the unit's key on a type mismatch — a plan/finalize bug.
    pub fn next_as<T: 'static>(&mut self) -> T {
        for (key, v) in self.items.by_ref() {
            if let Some(v) = v {
                return *v.downcast::<T>().unwrap_or_else(|_| {
                    panic!("unit `{key}`: finalize expected a {}", std::any::type_name::<T>())
                });
            }
        }
        panic!("finalize consumed more values than the sweep's units produced");
    }
}

/// One registered experiment.
pub struct Experiment {
    /// Registry id — also the wrapper binary's name (`fig3`, …).
    pub id: &'static str,
    /// Human title used in `results/CONFORMANCE.md`.
    pub title: &'static str,
    /// Describe the experiment as a [`Sweep`].
    pub plan: fn(&mut Sweep),
}

/// Every experiment the observatory knows, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1", title: "Table 1 — fitted model parameters", plan: table1::plan
        },
        Experiment {
            id: "fig3",
            title: "Figure 3 — put/get completion time vs distance",
            plan: fig3::plan,
        },
        Experiment { id: "fig4", title: "Figure 4 — MPB contention", plan: fig4::plan },
        Experiment {
            id: "fig5",
            title: "Figure 5 — propagation and notification trees",
            plan: fig5::plan,
        },
        Experiment {
            id: "fig6", title: "Figure 6 — modeled broadcast latency", plan: fig6::plan
        },
        Experiment {
            id: "table2", title: "Table 2 — modeled peak throughput", plan: table2::plan
        },
        Experiment {
            id: "fig8a",
            title: "Figure 8a — measured broadcast latency",
            plan: fig8a::plan,
        },
        Experiment {
            id: "fig8b",
            title: "Figure 8b — measured broadcast throughput",
            plan: fig8b::plan,
        },
        Experiment {
            id: "linkstress",
            title: "Section 3.3 — mesh link stress",
            plan: linkstress::plan,
        },
        Experiment { id: "ablation", title: "Design-choice ablations", plan: ablation::plan },
        Experiment {
            id: "heatmap",
            title: "Section 5 — per-link mesh occupancy heatmaps",
            plan: heatmap::plan,
        },
        Experiment {
            id: "whatif",
            title: "Causal what-if profiles — cost-class sensitivity",
            plan: whatif::plan,
        },
        Experiment {
            id: "skew",
            title: "Message journeys — delivery skew & straggler attribution",
            plan: skew::plan,
        },
        Experiment {
            id: "faults",
            title: "Reliable broadcast — degradation under injected faults",
            plan: faults::plan,
        },
        Experiment {
            id: "tune",
            title: "Configuration-space sweep — best (k, M_oc, fan-out, tree)",
            plan: tune::plan,
        },
        Experiment {
            id: "soak",
            title: "Soak — sustained reliable traffic under SLO watchdogs",
            plan: soak::plan,
        },
        Experiment {
            id: "audit",
            title: "Causal trace audit — happens-before conformance of recorded runs",
            plan: audit::plan,
        },
    ]
}

/// What one executed unit produced: its context (text/rows/shapes/
/// artifacts), its value for finalize, and its own metered cost.
pub(crate) struct UnitOutcome {
    pub(crate) key: String,
    pub(crate) ctx: ExpCtx,
    pub(crate) value: Option<UnitValue>,
    pub(crate) metrics: SelfMetrics,
}

/// Execute one unit on the calling thread, metering its wall time and
/// exactly its own engine work (thread-local telemetry scope — safe
/// under any number of concurrently executing units).
pub(crate) fn execute_unit(unit: Unit, quick: bool) -> UnitOutcome {
    let mut ctx = ExpCtx::new(quick);
    let _ = scc_sim::telemetry::take_thread();
    let wall = std::time::Instant::now();
    let value = (unit.run)(&mut ctx);
    let wall_s = wall.elapsed().as_secs_f64();
    let d = scc_sim::telemetry::take_thread();
    UnitOutcome {
        key: unit.key,
        ctx,
        value,
        metrics: SelfMetrics {
            wall_s,
            sim_runs: d.runs,
            sim_events: d.events,
            heap_pushes: d.heap_pushes,
            coalesced_steps: d.coalesced_steps,
            units: 0, // set by `assemble` to the merged unit count
        },
    }
}

/// Merge executed units (in declaration order — the caller must pass
/// them so) and run the finalize step. This is the deterministic-merge
/// half of the parallel runner: given the same unit values, the result
/// is byte-identical however the units were scheduled.
pub(crate) fn assemble(
    exp: &Experiment,
    quick: bool,
    finalize: Option<FinalizeFn>,
    outcomes: Vec<UnitOutcome>,
) -> (ExperimentReport, String, Vec<(String, String)>) {
    let unit_count = outcomes.len() as u64;
    let mut text = String::new();
    let mut rows = Vec::new();
    let mut shapes = Vec::new();
    let mut artifacts = Vec::new();
    let mut metrics = SelfMetrics::default();
    let mut values = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        text.push_str(&o.ctx.out);
        rows.extend(o.ctx.rows);
        shapes.extend(o.ctx.shapes);
        artifacts.extend(o.ctx.artifacts);
        metrics.absorb(&o.metrics);
        values.push((o.key, o.value));
    }
    if let Some(f) = finalize {
        let values = Values { items: values.into_iter() };
        let fin = execute_unit(
            Unit {
                key: "finalize".to_string(),
                cost: 0,
                run: Box::new(move |ctx| {
                    f(ctx, values);
                    None
                }),
            },
            quick,
        );
        text.push_str(&fin.ctx.out);
        rows.extend(fin.ctx.rows);
        shapes.extend(fin.ctx.shapes);
        artifacts.extend(fin.ctx.artifacts);
        metrics.absorb(&fin.metrics);
    }
    metrics.units = unit_count;
    let report = ExperimentReport {
        id: exp.id.to_string(),
        title: exp.title.to_string(),
        rows,
        shapes,
        metrics,
    };
    (report, text, artifacts)
}

/// Run one experiment sequentially on the calling thread — the exact
/// legacy path (`--jobs 1`). Returns the structured report, the legacy
/// text, and any sidecar artifacts the experiment queued.
pub fn run_experiment_full(
    exp: &Experiment,
    quick: bool,
) -> (ExperimentReport, String, Vec<(String, String)>) {
    let mut sweep = Sweep::new(quick);
    (exp.plan)(&mut sweep);
    let Sweep { units, finalize, .. } = sweep;
    let outcomes = units.into_iter().map(|u| execute_unit(u, quick)).collect();
    assemble(exp, quick, finalize, outcomes)
}

/// [`run_experiment_full`] without the artifact channel — the form the
/// standalone binaries and most tests use.
pub fn run_experiment(exp: &Experiment, quick: bool) -> (ExperimentReport, String) {
    let (report, out, _artifacts) = run_experiment_full(exp, quick);
    (report, out)
}

/// Entry point of the thin wrapper binaries: run the experiment
/// (respecting `--jobs N` / `SCC_JOBS`, default all host cores — safe
/// because the output is byte-identical at any job count), print its
/// classic text, and exit nonzero — naming every failing claim on
/// stderr instead of panicking — if any paper shape claim failed. An
/// unknown id exits 2 listing the registry.
pub fn run_standalone(id: &str) {
    let reg = registry();
    let Some(exp) = reg.into_iter().find(|e| e.id == id) else {
        let known: Vec<&str> = registry().iter().map(|e| e.id).collect();
        eprintln!("{id}: unknown experiment id (known: {})", known.join(", "));
        std::process::exit(2);
    };
    let jobs = crate::pool::jobs_from_args(std::env::args().skip(1));
    let (report, out, _artifacts) = crate::runner::run_experiment_jobs(&exp, crate::quick(), jobs);
    print!("{out}");
    let failed: Vec<_> = report.shapes.iter().filter(|s| !s.pass).collect();
    for s in &failed {
        eprintln!("[{id}] shape check `{}` failed: {}", s.name, s.detail);
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_stable() {
        let reg = registry();
        let ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        for (i, id) in ids.iter().enumerate() {
            assert!(!ids[..i].contains(id), "duplicate id {id}");
        }
        for id in ["fig3", "fig8b", "table1", "table2", "linkstress", "ablation", "heatmap", "skew"]
        {
            assert!(ids.contains(&id), "missing {id}");
        }
    }

    #[test]
    fn run_experiment_attaches_metrics_and_text() {
        let reg = registry();
        let fig5 = reg.iter().find(|e| e.id == "fig5").unwrap();
        let (report, out) = run_experiment(fig5, true);
        assert_eq!(report.id, "fig5");
        assert!(!out.is_empty());
        assert!(report.shapes_pass(), "{:?}", report.shapes);
        assert!(report.metrics.wall_s > 0.0);
        assert!(report.metrics.units >= 1);
    }

    #[test]
    fn every_experiment_decomposes_into_units() {
        for exp in registry() {
            let mut sweep = Sweep::new(true);
            (exp.plan)(&mut sweep);
            assert!(!sweep.units.is_empty(), "{}: empty sweep", exp.id);
            // Keys are asserted unique at push time; re-check here so a
            // relaxed push never slips through.
            let mut keys: Vec<&str> = sweep.units.iter().map(|u| u.key.as_str()).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), sweep.units.len(), "{}: duplicate keys", exp.id);
        }
    }

    #[test]
    fn values_flow_from_units_to_finalize_in_declaration_order() {
        let mut sweep = Sweep::new(true);
        sweep.value_unit("a", |_| 10u64);
        sweep.unit("textual", |ctx| outln!(ctx, "mid"));
        sweep.value_unit_w("b", 99, |_| 32u64);
        sweep.finalize(|ctx, mut values| {
            let a = values.next_as::<u64>();
            let b = values.next_as::<u64>();
            outln!(ctx, "sum {}", a + b);
        });
        let Sweep { units, finalize, .. } = sweep;
        let outcomes = units.into_iter().map(|u| execute_unit(u, true)).collect();
        let exp = Experiment { id: "t", title: "t", plan: |_| {} };
        let (report, text, _) = assemble(&exp, true, finalize, outcomes);
        assert_eq!(text, "mid\nsum 42\n");
        assert_eq!(report.metrics.units, 3);
    }
}
