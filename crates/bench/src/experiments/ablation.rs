//! Ablation study of OC-Bcast's design choices (DESIGN.md §4):
//!
//! * notification fan-out — binary tree (paper) vs ternary vs the
//!   parent notifying all children sequentially;
//! * double buffering on/off, with the standard and the `leaf_direct`
//!   consumption patterns;
//! * the Section 5.4 `leaf_direct` optimization itself;
//! * chunk size (M_oc) sweep;
//! * tree layout — the paper's id-based k-ary heap vs the
//!   topology-aware extension;
//! * the Section 5.4 alternative design: scatter-allgather over
//!   one-sided RMA, vs the two-sided baseline and vs OC-Bcast.

use super::{outln, Sweep};
use crate::{measure_bcast, paper_chip};
use oc_bcast::{Algorithm, OcConfig, TreeLayout, TreeStrategy};
use scc_hal::CoreId;

fn run_one(cfg_oc: OcConfig, bytes: usize) -> (f64, f64) {
    let cfg = paper_chip();
    let t = measure_bcast(&cfg, Algorithm::OcBcast(cfg_oc), CoreId(0), bytes, 1, 2).expect("sim");
    (t.latency_us, t.throughput_mb_s)
}

pub(super) fn plan(sweep: &mut Sweep) {
    let small = 32; // 1 CL
    let large = if sweep.quick { 96 * 32 * 8 } else { 96 * 32 * 40 };
    // Cost in cache lines moved — large-message units dominate, so they
    // get scheduled first.
    let big = (large / 32) as u64;

    // One unit per measured configuration; all rendering/claims happen
    // in finalize so the sections keep their sequential order.
    for (name, fanout) in [("binary (paper)", 2usize), ("ternary", 3), ("sequential", 64)] {
        sweep.value_unit_w(format!("fanout {name}"), big + 1, move |_| {
            let c = OcConfig { notify_fanout: fanout, ..OcConfig::default() };
            (run_one(c, small).0, run_one(c, large).1)
        });
    }
    for (name, fanout) in [("binary (paper)", 2usize), ("sequential", 64)] {
        sweep.value_unit(format!("fanout k47 {name}"), move |_| {
            let c =
                OcConfig { k: 47, notify_fanout: fanout, chunk_lines: 96, ..OcConfig::default() };
            run_one(c, small).0
        });
    }
    for (name, leaf_direct) in [("standard steps", false), ("leaf_direct", true)] {
        sweep.value_unit_w(format!("double-buffer {name}"), 2 * big, move |_| {
            let on = run_one(OcConfig { leaf_direct, ..OcConfig::default() }, large).1;
            let off = run_one(
                OcConfig { leaf_direct, double_buffer: false, ..OcConfig::default() },
                large,
            )
            .1;
            (on, off)
        });
    }
    for bytes in [small, 96 * 32, large] {
        sweep.value_unit_w(format!("leaf_direct {bytes}B"), (bytes / 16) as u64, move |_| {
            let base = run_one(OcConfig::default(), bytes).0;
            let opt = run_one(OcConfig { leaf_direct: true, ..OcConfig::default() }, bytes).0;
            (base, opt)
        });
    }
    for chunk in [24usize, 48, 96, 120] {
        sweep.value_unit_w(format!("chunk M_oc={chunk}"), big, move |_| {
            run_one(OcConfig { chunk_lines: chunk, ..OcConfig::default() }, large).1
        });
    }
    for k in [2usize, 7] {
        for (name, strategy) in
            [("by-id (paper)", TreeStrategy::ById), ("topology-aware", TreeStrategy::TopologyAware)]
        {
            sweep.value_unit_w(format!("layout k={k} {name}"), 97, move |_| {
                let c = OcConfig { k, strategy, ..OcConfig::default() };
                (run_one(c, small).0, run_one(c, 96 * 32).0)
            });
        }
    }
    for (label, alg) in [
        ("s-ag two-sided", Algorithm::ScatterAllgather),
        ("s-ag one-sided", Algorithm::RmaScatterAllgather),
        ("OC-Bcast k=7", Algorithm::oc_default()),
    ] {
        sweep.value_unit_w(format!("alt {label}"), big, move |_| {
            measure_bcast(&paper_chip(), alg, CoreId(0), large, 0, 1).expect("sim").throughput_mb_s
        });
    }

    sweep.finalize(move |ctx, mut values| {
        outln!(ctx, "# --- notification fan-out (k = 7, 1 CL latency / large-msg throughput) ---");
        let mut fanout_lat = Vec::new();
        for (name, _) in [("binary (paper)", 2usize), ("ternary", 3), ("sequential", 64)] {
            let (l, t) = values.next_as::<(f64, f64)>();
            outln!(ctx, "{name:<16} latency {l:>8.2} µs   throughput {t:>7.2} MB/s");
            ctx.row(format!("fanout {name} latency"), None, None, l, 0.02, "us");
            ctx.row(format!("fanout {name} throughput"), None, None, t, 0.02, "MB/s");
            fanout_lat.push(l);
        }
        ctx.shape(
            "binary notification beats sequential at k=7",
            fanout_lat[0] < fanout_lat[2],
            format!("binary {:.2} µs vs sequential {:.2} µs", fanout_lat[0], fanout_lat[2]),
        );
        outln!(ctx);

        outln!(ctx, "# --- notification fan-out at k = 47 (polling-heavy regime) ---");
        let mut k47_lat = Vec::new();
        for (name, _) in [("binary (paper)", 2usize), ("sequential", 64)] {
            let l = values.next_as::<f64>();
            outln!(ctx, "{name:<16} 1-CL latency {l:>8.2} µs");
            ctx.row(format!("fanout k=47 {name} latency"), None, None, l, 0.02, "us");
            k47_lat.push(l);
        }
        ctx.shape(
            "binary notification matters most in the polling-heavy k=47 regime",
            k47_lat[0] < k47_lat[1],
            format!("binary {:.2} µs vs sequential {:.2} µs", k47_lat[0], k47_lat[1]),
        );
        outln!(ctx);

        outln!(ctx, "# --- double buffering (large-message throughput, MB/s) ---");
        for (name, _) in [("standard steps", false), ("leaf_direct", true)] {
            let (on, off) = values.next_as::<(f64, f64)>();
            outln!(
                ctx,
                "{name:<16} double {on:>7.2}   single {off:>7.2}   gain {:>5.2}x",
                on / off
            );
            ctx.row(format!("double-buffer {name} on"), None, None, on, 0.02, "MB/s");
            ctx.row(format!("double-buffer {name} off"), None, None, off, 0.02, "MB/s");
            ctx.shape(
                &format!("double buffering never hurts ({name})"),
                on >= off * 0.999,
                format!("double {on:.2} vs single {off:.2} MB/s"),
            );
        }
        outln!(ctx, "# (with the paper's early done-release the single buffer keeps up;");
        outln!(
            ctx,
            "#  with monolithic consumption the ping-pong penalty appears — see EXPERIMENTS.md)"
        );
        outln!(ctx);

        outln!(ctx, "# --- leaf_direct (Section 5.4 optimization the paper omits) ---");
        for bytes in [small, 96 * 32, large] {
            let (base, opt) = values.next_as::<(f64, f64)>();
            outln!(
                ctx,
                "{:>8} B: standard {base:>9.2} µs   leaf_direct {opt:>9.2} µs   gain {:>5.1}%",
                bytes,
                (1.0 - opt / base) * 100.0
            );
            ctx.row(format!("leaf_direct {bytes}B standard"), None, None, base, 0.02, "us");
            ctx.row(format!("leaf_direct {bytes}B optimized"), None, None, opt, 0.02, "us");
        }
        outln!(ctx);

        outln!(ctx, "# --- chunk size M_oc (large-message throughput, MB/s) ---");
        let mut chunk_tput = Vec::new();
        for chunk in [24usize, 48, 96, 120] {
            let t = values.next_as::<f64>();
            outln!(
                ctx,
                "M_oc = {chunk:>3} CL: {t:>7.2} MB/s{}",
                if chunk == 96 { "  (paper)" } else { "" }
            );
            ctx.row(format!("chunk M_oc={chunk}"), None, None, t, 0.02, "MB/s");
            chunk_tput.push((chunk, t));
        }
        ctx.shape(
            "the paper's M_oc=96 beats small chunks",
            chunk_tput[2].1 > chunk_tput[0].1,
            format!("96 CL {:.2} vs 24 CL {:.2} MB/s", chunk_tput[2].1, chunk_tput[0].1),
        );
        outln!(ctx);

        outln!(ctx, "# --- tree layout: id-based (paper) vs topology-aware (extension) ---");
        for k in [2usize, 7] {
            for (name, strategy) in [
                ("by-id (paper)", TreeStrategy::ById),
                ("topology-aware", TreeStrategy::TopologyAware),
            ] {
                let (l1, l96) = values.next_as::<(f64, f64)>();
                let dist = TreeLayout::build(strategy, 48, k, CoreId(0)).total_parent_distance();
                outln!(
                    ctx,
                    "k={k} {name:<16} 1CL {l1:>7.2} µs   96CL {l96:>8.2} µs   Σ parent-dist {dist}"
                );
                ctx.row(format!("layout k={k} {name} 1CL"), None, None, l1, 0.02, "us");
                ctx.row(format!("layout k={k} {name} 96CL"), None, None, l96, 0.02, "us");
            }
        }
        outln!(ctx);

        outln!(ctx, "# --- Section 5.4 alternative: one-sided scatter-allgather ---");
        let mut sag = Vec::new();
        for label in ["s-ag two-sided", "s-ag one-sided", "OC-Bcast k=7"] {
            let t = values.next_as::<f64>();
            outln!(ctx, "{label:<16} peak {t:>7.2} MB/s");
            ctx.row(format!("alt {label} peak"), None, None, t, 0.02, "MB/s");
            sag.push(t);
        }
        ctx.shape(
            "one-sided RMA beats the two-sided scatter-allgather",
            sag[1] > sag[0],
            format!("one-sided {:.2} vs two-sided {:.2} MB/s", sag[1], sag[0]),
        );
        ctx.shape(
            "OC-Bcast beats both scatter-allgather variants",
            sag[2] > sag[1] && sag[2] > sag[0],
            format!("OC-Bcast {:.2} vs one-sided {:.2} MB/s", sag[2], sag[1]),
        );
        outln!(ctx, "# one-sided RMA roughly doubles scatter-allgather, but the algorithm");
        outln!(ctx, "# shape (no off-chip round trip per hop) is what OC-Bcast adds on top.");
    });
}
