//! Degradation under injected faults: the reliable collectives
//! (timeout/retry/ack — `oc_bcast::reliable`) swept across the
//! deterministic fault plan's drop/delay rates on the full 48-core
//! chip. Every operating point must deliver the verified payload to
//! all 47 destinations; what the sweep measures is the *price* of that
//! guarantee — per-destination delivered latency (p50/p99/max) and the
//! makespan as the injected rate rises, next to the recovery counters
//! (timeouts, probes, recoveries, re-notifies) that explain it.
//!
//! The finalize step derives `BENCH_faults.json` and the human digest
//! `results/FAULTS.md`. The observatory only writes those sidecars
//! under `--faults`; the rows and shape checks join
//! `BENCH_figures.json` unconditionally. Faults are seeded and drawn
//! in deterministic event order, so every artifact is byte-identical
//! at any `--jobs` count.

use super::{outln, Sweep};
use oc_bcast::{OcBcast, OcConfig, RelStats, Reliability, ReliableBinomial};
use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult, Time};
use scc_obs::{faults_artifact, render_faults_markdown, FaultCurve, FaultPoint, LatencyHistogram};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, FaultPlan, SimConfig};

/// The paper's full chip; fault tolerance is only interesting at scale.
const CORES: usize = 48;
const ROOT: CoreId = CoreId(0);

/// Transfers hit by the delay fault stall this long.
const DELAY: Time = Time(5_000_000); // 5 µs

/// The sweep's reliability policy: [`Reliability::standard`] with the
/// timeout raised above the longest *legitimate* fault-free wait —
/// the reliable binomial's deepest rank waits ~450 µs for its first
/// line at 96 cache lines on 48 cores. Tuning the timeout under that
/// bound makes the policy fire on healthy waits (the full sweep showed
/// 42 spurious timeouts at rate 0); above it, every timeout the table
/// reports is fault-caused, which is what the fault-free shape check
/// pins.
fn policy() -> Reliability {
    Reliability { timeout: Time::from_us_f64(600.0), ..Reliability::standard() }
}

/// Which reliable protocol a scenario drives.
#[derive(Clone, Copy)]
enum Proto {
    /// Reliable OC-Bcast with the given fan-out.
    Oc(usize),
    /// The reliable binomial-tree baseline.
    Binomial,
}

impl Proto {
    fn label(self) -> String {
        match self {
            Proto::Oc(k) => format!("k={k}"),
            Proto::Binomial => "binomial".to_string(),
        }
    }
}

/// Same contention spectrum as the `skew` experiment: the flat-tree
/// extreme, the paper's default operating point, and the baseline.
fn scenarios() -> Vec<(&'static str, Proto)> {
    vec![("oc_k47", Proto::Oc(47)), ("oc_k7", Proto::Oc(7)), ("binomial", Proto::Binomial)]
}

/// Remote-notification drop rates, ppm; transfers are delayed at half
/// the drop rate so both fault classes stress every point.
fn rates(quick: bool) -> Vec<u32> {
    if quick {
        vec![0, 50_000]
    } else {
        vec![0, 20_000, 50_000, 100_000]
    }
}

fn msg_lines(quick: bool) -> usize {
    if quick {
        32
    } else {
        96
    }
}

/// What one (scenario, rate) unit measures.
struct Measured {
    /// Per-destination delivered latencies, root's call to each
    /// destination's verified return (unsorted, core order).
    latencies: Vec<Time>,
    /// Destinations whose received payload verified byte-for-byte.
    delivered: u64,
    makespan: Time,
    faults: u64,
    lost: Time,
    /// Recovery counters summed over every core.
    rel: RelStats,
}

/// Run one reliable broadcast under the given drop rate and collect
/// the delivered-latency distribution plus the recovery counters.
fn run_point(proto: Proto, lines: usize, drop_ppm: u32) -> Measured {
    let bytes = lines * 32;
    let cfg = SimConfig {
        num_cores: CORES,
        mem_bytes: (bytes.next_power_of_two()).max(1 << 20),
        faults: FaultPlan {
            drop_notification_ppm: drop_ppm,
            delay_ppm: drop_ppm / 2,
            delay: DELAY,
            ..FaultPlan::default()
        },
        ..SimConfig::default()
    };
    // Deliberately no barrier before the broadcast: the plain barrier
    // signals through remote flag puts — exactly what the fault plan
    // drops — so under injected faults it would deadlock before the
    // reliable protocol even starts. Setup is deterministic and near
    // symmetric, and latency is measured from the root's call time
    // (the paper's definition), so alignment is unnecessary.
    let rep = run_spmd(&cfg, move |c| -> RmaResult<(Time, Time, bool, RelStats)> {
        let mut alloc = MpbAllocator::new();
        let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
        let r = MemRange::new(0, bytes);
        if c.core() == ROOT {
            c.mem_write(0, &payload)?;
        }
        let (t0, t1, stats) = match proto {
            Proto::Oc(k) => {
                let mut bc = OcBcast::new_reliable(&mut alloc, OcConfig::with_k(k), policy())
                    .expect("MPB layout fits");
                let t0 = c.now();
                bc.bcast_reliable(c, ROOT, r)?;
                (t0, c.now(), bc.rel_stats().unwrap_or_default())
            }
            Proto::Binomial => {
                let mut bc = ReliableBinomial::new(&mut alloc, c.num_cores(), policy())
                    .expect("MPB layout fits");
                let t0 = c.now();
                bc.bcast(c, ROOT, r)?;
                (t0, c.now(), bc.stats())
            }
        };
        Ok((t0, t1, c.mem_to_vec(r)? == payload, stats))
    })
    .expect("fault sweep run");
    let per: Vec<(Time, Time, bool, RelStats)> =
        rep.results.into_iter().map(|r| r.expect("reliable bcast must complete")).collect();
    let root_call = per[ROOT.index()].0;
    let mut m = Measured {
        latencies: Vec::with_capacity(CORES - 1),
        delivered: 0,
        makespan: rep.makespan,
        faults: rep.stats.faults,
        lost: rep.stats.fault_lost,
        rel: RelStats::default(),
    };
    for (i, (_, t1, ok, stats)) in per.iter().enumerate() {
        m.rel.timeouts += stats.timeouts;
        m.rel.probes += stats.probes;
        m.rel.recoveries += stats.recoveries;
        m.rel.renotifies += stats.renotifies;
        if i != ROOT.index() {
            m.latencies.push(*t1 - root_call);
            m.delivered += u64::from(*ok);
        }
    }
    m
}

pub(super) fn plan(sweep: &mut Sweep) {
    let lines = msg_lines(sweep.quick);
    for (id, proto) in scenarios() {
        for rate in rates(sweep.quick) {
            // Heavier rates do more recovery work — weight them so the
            // longest-task-first scheduler starts them early.
            let cost = lines as u64 * (1 + u64::from(rate) / 25_000);
            sweep.value_unit_w(format!("faults {id} drop={rate}ppm"), cost, move |_| {
                run_point(proto, lines, rate)
            });
        }
    }

    sweep.finalize(move |ctx, mut values| {
        let rates = rates(ctx.quick);
        let lines = msg_lines(ctx.quick);
        outln!(
            ctx,
            "# reliable broadcast under injected faults, {CORES} cores, {lines} cache lines"
        );
        outln!(ctx, "# drop = remote-notification loss (ppm); transfers delayed {DELAY} at drop/2");
        let mut curves: Vec<FaultCurve> = Vec::new();
        for (id, proto) in scenarios() {
            let mut curve = FaultCurve {
                id: id.to_string(),
                label: format!("{} {CORES}c {lines}cl", proto.label()),
                cores: CORES as u64,
                points: Vec::new(),
            };
            for &rate in &rates {
                let m = values.next_as::<Measured>();
                let mut hist = LatencyHistogram::new();
                for &l in &m.latencies {
                    hist.record(l);
                }
                let p = FaultPoint {
                    drop_ppm: u64::from(rate),
                    delay_ppm: u64::from(rate / 2),
                    delivered: m.delivered,
                    p50: hist.quantile(0.50).expect("latencies"),
                    p99: hist.quantile(0.99).expect("latencies"),
                    max: hist.quantile(1.0).expect("latencies"),
                    makespan: m.makespan,
                    faults: m.faults,
                    lost: m.lost,
                    timeouts: m.rel.timeouts,
                    probes: m.rel.probes,
                    recoveries: m.rel.recoveries,
                    renotifies: m.rel.renotifies,
                };
                ctx.row(
                    format!("{id} drop={rate}ppm delivery p50"),
                    None,
                    None,
                    p.p50.as_us_f64(),
                    0.02,
                    "us",
                );
                ctx.row(
                    format!("{id} drop={rate}ppm delivery p99"),
                    None,
                    None,
                    p.p99.as_us_f64(),
                    0.02,
                    "us",
                );
                ctx.row(
                    format!("{id} drop={rate}ppm makespan"),
                    None,
                    None,
                    p.makespan.as_us_f64(),
                    0.02,
                    "us",
                );
                outln!(
                    ctx,
                    "{id:<10} drop {rate:>6}ppm  p50 {:>9.3}  p99 {:>9.3}  makespan {:>9.3} us  \
                     {:>4} faults  {:>3} recoveries",
                    p.p50.as_us_f64(),
                    p.p99.as_us_f64(),
                    p.makespan.as_us_f64(),
                    p.faults,
                    p.recoveries,
                );
                curve.points.push(p);
            }

            let all_delivered = curve.points.iter().all(|p| p.delivered == (CORES - 1) as u64);
            ctx.shape(
                &format!("{id}: every destination verifies delivery at every fault rate"),
                all_delivered,
                format!("{} destinations x {} rates", CORES - 1, curve.points.len()),
            );
            let clean = &curve.points[0];
            ctx.shape(
                &format!("{id}: the fault-free point injects nothing and recovers nothing"),
                clean.faults == 0 && clean.timeouts == 0 && clean.recoveries == 0,
                format!("{} faults, {} timeouts at rate 0", clean.faults, clean.timeouts),
            );
            let top = curve.points.last().expect("at least one rate");
            ctx.shape(
                &format!("{id}: faults fire and are absorbed at the top rate"),
                top.faults > 0 && top.recoveries > 0,
                format!(
                    "drop {}ppm: {} faults, {} timeouts, {} recoveries",
                    top.drop_ppm, top.faults, top.timeouts, top.recoveries
                ),
            );
            curves.push(curve);
        }
        outln!(ctx, "# every point: payload verified on all {} destinations", CORES - 1);
        ctx.artifact("BENCH_faults.json", faults_artifact(&curves).render());
        ctx.artifact("results/FAULTS.md", render_faults_markdown(&curves));
    });
}
