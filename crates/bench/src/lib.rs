//! # scc-bench — the experiment harness
//!
//! Every table/figure of the paper lives in the typed
//! [`experiments`] registry (see DESIGN.md §4 for the index); the
//! `observatory` binary runs the whole registry and emits the
//! machine-readable conformance artifacts, while one thin wrapper
//! binary per experiment preserves the classic
//! `cargo run --bin figN > results/figN.txt` workflow:
//!
//! | id / binary | reproduces |
//! |-------------|-----------------------------------------------|
//! | `table1`    | Table 1 — fitted model parameters             |
//! | `fig3`      | Figure 3 — put/get completion vs distance     |
//! | `fig4`      | Figure 4 — MPB contention                     |
//! | `fig5`      | Figure 5 — propagation & notification trees   |
//! | `fig6`      | Figure 6 — modeled broadcast latency          |
//! | `table2`    | Table 2 — modeled peak throughput             |
//! | `fig8a`     | Figure 8a — measured broadcast latency        |
//! | `fig8b`     | Figure 8b — measured broadcast throughput     |
//! | `linkstress`| Section 3.3 — mesh link stress                |
//! | `ablation`  | design-choice ablations (DESIGN.md)           |
//! | `heatmap`   | Section 5 — per-link mesh occupancy (obs)     |
//! | `whatif`    | causal what-if profiles — cost-class sensitivity |
//! | `skew`      | message journeys — delivery skew & stragglers (obs) |
//!
//! Latency is defined exactly as in the paper (Sections 5.2/6.1): the
//! time from the source's call of the broadcast until the last core
//! returns, measured with globally comparable clocks after aligning
//! the cores on a barrier.

use oc_bcast::{Algorithm, Broadcaster, OcBcast, Reliability, ReliableBinomial};
use scc_hal::{CoreId, MemRange, Rma, RmaResult, Time};
use scc_obs::{CostClass, ObsEvent, WhatIfPoint, WhatIfProfile};
use scc_rcce::{Barrier, MpbAllocator};
use scc_sim::{run_spmd, FaultPlan, SimConfig, SimError, SimParams};

pub mod engine_report;
pub mod experiments;
pub mod pool;
pub mod runner;
pub use engine_report::{engine_artifact, EngineSample};
pub use experiments::{
    registry, run_experiment, run_experiment_full, run_standalone, whatif_artifact, ExpCtx,
    Experiment, Sweep, Values,
};
pub use runner::{run_experiment_jobs, run_registry, ExpOutput, RegistryRun};

/// Default simulator configuration for the paper's experiments: the
/// full 48-core chip.
pub fn paper_chip() -> SimConfig {
    SimConfig { num_cores: 48, mem_bytes: 4 << 20, ..SimConfig::default() }
}

/// Reduced-cost knob: set `SCC_BENCH_QUICK=1` to shrink repetition
/// counts and sweep densities (used in CI and the test suite).
pub fn quick() -> bool {
    std::env::var_os("SCC_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Result of one latency measurement series.
#[derive(Clone, Debug)]
pub struct BcastTiming {
    /// Mean broadcast latency in microseconds.
    pub latency_us: f64,
    /// Corresponding throughput in MB/s (bytes per microsecond).
    pub throughput_mb_s: f64,
}

/// Measure broadcast latency on the simulator: `reps` timed broadcasts
/// (after `warmup` untimed ones), each preceded by a barrier; latency
/// of one repetition is `max_core(return time) − source(call time)`.
pub fn measure_bcast(
    cfg: &SimConfig,
    alg: Algorithm,
    root: CoreId,
    bytes: usize,
    warmup: usize,
    reps: usize,
) -> Result<BcastTiming, SimError> {
    assert!(reps >= 1 && bytes >= 1);
    let rep = run_spmd(cfg, move |c| -> RmaResult<(Vec<Time>, Vec<Time>)> {
        let mut alloc = MpbAllocator::new();
        let mut bar = Barrier::new(&mut alloc, c.num_cores()).expect("barrier lines");
        let mut b = Broadcaster::new(&mut alloc, alg, c.num_cores()).expect("bcast lines");
        let r = MemRange::new(0, bytes);
        if c.core() == root {
            // Deterministic payload so receivers could verify.
            let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
            c.mem_write(0, &payload)?;
        }
        let mut starts = Vec::with_capacity(reps);
        let mut ends = Vec::with_capacity(reps);
        for it in 0..warmup + reps {
            bar.wait(c)?;
            let t0 = c.now();
            b.bcast(c, root, r)?;
            if it >= warmup {
                starts.push(t0);
                ends.push(c.now());
            }
        }
        Ok((starts, ends))
    })?;
    let per_core: Vec<_> = rep
        .results
        .into_iter()
        .map(|r| r.map_err(|e| SimError::Engine(format!("core failed: {e}"))))
        .collect::<Result<_, _>>()?;
    let mut total_us = 0.0;
    for i in 0..reps {
        let start = per_core[root.index()].0[i];
        let end = per_core.iter().map(|(_, e)| e[i]).max().expect("cores");
        total_us += (end - start).as_us_f64();
    }
    let latency_us = total_us / reps as f64;
    Ok(BcastTiming { latency_us, throughput_mb_s: bytes as f64 / latency_us })
}

/// Sweep message sizes (in cache lines) for one algorithm.
pub fn sweep_sizes(
    cfg: &SimConfig,
    alg: Algorithm,
    sizes_lines: &[usize],
    warmup: usize,
    reps: usize,
) -> Result<Vec<(usize, BcastTiming)>, SimError> {
    sizes_lines
        .iter()
        .map(|&m| Ok((m, measure_bcast(cfg, alg, CoreId(0), m * 32, warmup, reps)?)))
        .collect()
}

/// One concrete broadcast setup the drift explainer can re-run: the
/// unit of recording, diffing, and what-if scanning.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable label used in reports and flamegraph root frames,
    /// e.g. `"ocbcast k=47 48c 96cl"`.
    pub label: String,
    pub alg: Algorithm,
    pub cores: usize,
    /// Message size in cache lines.
    pub lines: usize,
}

impl Scenario {
    pub fn new(alg: Algorithm, cores: usize, lines: usize) -> Scenario {
        Scenario { label: format!("{} {cores}c {lines}cl", alg.label()), alg, cores, lines }
    }

    fn config(&self, params: SimParams, record: bool) -> SimConfig {
        SimConfig {
            num_cores: self.cores,
            mem_bytes: ((self.lines * 32).next_power_of_two()).max(1 << 20),
            params,
            record,
            ..SimConfig::default()
        }
    }
}

/// The scenario the drift explainer re-runs to explain a drifted
/// experiment: cheap (one broadcast), representative of what the
/// experiment stresses. Experiments with no broadcast behind them
/// (pure-model tables) map to the default mid-size OC-Bcast.
pub fn representative_scenario(experiment_id: &str) -> Scenario {
    match experiment_id {
        // Contention experiments: the flat tree saturates the root port.
        "fig4" | "linkstress" | "heatmap" => Scenario::new(Algorithm::oc_with_k(47), 48, 96),
        // Latency experiments at small size: binomial at one line is the
        // latency-bound extreme the paper contrasts against.
        "fig5" => Scenario::new(Algorithm::Binomial, 48, 1),
        // Throughput experiments: large-message OC-Bcast.
        "fig8b" | "table2" => Scenario::new(Algorithm::oc_with_k(7), 48, 256),
        // Everything else: the paper's default operating point.
        _ => Scenario::new(Algorithm::oc_with_k(7), 48, 96),
    }
}

/// Run one recorded broadcast of `sc` under `params` and return the
/// full event stream plus the makespan. The recorded stream is what
/// the diff/histogram/flamegraph layers consume.
pub fn record_run(sc: &Scenario, params: SimParams) -> Result<(Vec<ObsEvent>, Time), SimError> {
    let (alg, cores, bytes) = (sc.alg, sc.cores, sc.lines * 32);
    let rep = run_spmd(&sc.config(params, true), move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, alg, cores).expect("MPB layout fits");
        if c.core() == CoreId(0) {
            let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
            c.mem_write(0, &payload)?;
        }
        b.bcast(c, CoreId(0), MemRange::new(0, bytes))
    })?;
    for r in &rep.results {
        r.as_ref().map_err(|e| SimError::Engine(format!("core failed: {e}")))?;
    }
    Ok((rep.events.expect("recording was enabled"), rep.makespan))
}

/// Run one recorded *reliable* broadcast of `sc` under `policy` and an
/// optional fault plan, returning the full event stream plus the
/// makespan — the raw material of the causal audit's reliable and
/// faulted scenarios. Only OC-Bcast and binomial have reliable
/// variants. Deliberately no barrier before the broadcast: the plain
/// barrier signals through exactly the remote flag puts the fault plan
/// drops, so it would deadlock before the reliable protocol starts.
pub fn record_reliable_run(
    sc: &Scenario,
    params: SimParams,
    faults: FaultPlan,
    policy: Reliability,
) -> Result<(Vec<ObsEvent>, Time), SimError> {
    let (alg, bytes) = (sc.alg, sc.lines * 32);
    let cfg = SimConfig { faults, ..sc.config(params, true) };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
        let r = MemRange::new(0, bytes);
        if c.core() == CoreId(0) {
            c.mem_write(0, &payload)?;
        }
        match alg {
            Algorithm::OcBcast(oc) => {
                let mut b = OcBcast::new_reliable(&mut alloc, oc, policy).expect("MPB layout fits");
                b.bcast_reliable(c, CoreId(0), r)
            }
            _ => {
                let mut b = ReliableBinomial::new(&mut alloc, c.num_cores(), policy)
                    .expect("MPB layout fits");
                b.bcast(c, CoreId(0), r)
            }
        }
    })?;
    for r in &rep.results {
        r.as_ref().map_err(|e| SimError::Engine(format!("core failed: {e}")))?;
    }
    Ok((rep.events.expect("recording was enabled"), rep.makespan))
}

/// Makespan of one unrecorded broadcast of `sc` under `params` — the
/// cheap measurement the what-if scan repeats per (class, factor).
pub fn measure_scenario(sc: &Scenario, params: SimParams) -> Result<Time, SimError> {
    let (alg, cores, bytes) = (sc.alg, sc.cores, sc.lines * 32);
    let rep = run_spmd(&sc.config(params, false), move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, alg, cores).expect("MPB layout fits");
        if c.core() == CoreId(0) {
            let payload: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
            c.mem_write(0, &payload)?;
        }
        b.bcast(c, CoreId(0), MemRange::new(0, bytes))
    })?;
    for r in &rep.results {
        r.as_ref().map_err(|e| SimError::Engine(format!("core failed: {e}")))?;
    }
    Ok(rep.makespan)
}

/// Causal what-if scan of `sc`: rerun it with every [`CostClass`]
/// scaled by each of `factors` and collect the sensitivities.
pub fn whatif_profile(sc: &Scenario, factors: &[f64]) -> Result<WhatIfProfile, SimError> {
    let base = SimParams::default();
    let nominal = measure_scenario(sc, base)?;
    let mut points = Vec::with_capacity(CostClass::ALL.len() * factors.len());
    for class in CostClass::ALL {
        for &factor in factors {
            let makespan = measure_scenario(sc, base.scaled(class, factor))?;
            points.push(WhatIfPoint { class, factor, makespan });
        }
    }
    Ok(WhatIfProfile { scenario: sc.label.clone(), nominal, points })
}

/// The algorithm set of Figures 6/8: OC-Bcast k ∈ {2, 7, 47} plus one
/// baseline.
pub fn paper_algorithms(baseline: Algorithm) -> Vec<Algorithm> {
    vec![Algorithm::oc_with_k(2), Algorithm::oc_with_k(7), Algorithm::oc_with_k(47), baseline]
}

/// Render rows of `(x, columns…)` as an aligned table with a CSV twin
/// (the CSV block is what EXPERIMENTS.md embeds), appended to `out`.
pub fn write_series(
    out: &mut String,
    title: &str,
    x_label: &str,
    col_labels: &[String],
    rows: &[(usize, Vec<f64>)],
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "# {x_label:>8}");
    for l in col_labels {
        let _ = write!(out, " {l:>12}");
    }
    out.push('\n');
    for (x, cols) in rows {
        let _ = write!(out, "{x:>10}");
        for v in cols {
            let _ = write!(out, " {v:>12.3}");
        }
        out.push('\n');
    }
    out.push('\n');
    let _ = writeln!(out, "csv,{x_label},{}", col_labels.join(","));
    for (x, cols) in rows {
        let vals: Vec<String> = cols.iter().map(|v| format!("{v:.4}")).collect();
        let _ = writeln!(out, "csv,{x},{}", vals.join(","));
    }
    out.push('\n');
}

/// [`write_series`] straight to stdout — the form the standalone
/// binaries use.
pub fn print_series(title: &str, x_label: &str, col_labels: &[String], rows: &[(usize, Vec<f64>)]) {
    let mut s = String::new();
    write_series(&mut s, title, x_label, col_labels, rows);
    print!("{s}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_bcast_produces_consistent_numbers() {
        let cfg = SimConfig { num_cores: 8, mem_bytes: 1 << 16, ..SimConfig::default() };
        let t = measure_bcast(&cfg, Algorithm::oc_default(), CoreId(0), 32, 1, 2).unwrap();
        assert!(t.latency_us > 1.0 && t.latency_us < 100.0, "{t:?}");
        assert!((t.throughput_mb_s - 32.0 / t.latency_us).abs() < 1e-9);
        // Determinism: a second identical measurement agrees exactly.
        let t2 = measure_bcast(&cfg, Algorithm::oc_default(), CoreId(0), 32, 1, 2).unwrap();
        assert_eq!(t.latency_us, t2.latency_us);
    }

    #[test]
    fn sweep_is_monotone_in_size_for_oc() {
        let cfg = SimConfig { num_cores: 8, mem_bytes: 1 << 18, ..SimConfig::default() };
        let s = sweep_sizes(&cfg, Algorithm::oc_default(), &[1, 8, 64, 128], 0, 1).unwrap();
        for w in s.windows(2) {
            assert!(w[1].1.latency_us > w[0].1.latency_us);
        }
    }

    #[test]
    fn paper_algorithm_set() {
        let a = paper_algorithms(Algorithm::Binomial);
        assert_eq!(a.len(), 4);
        assert_eq!(a[1].label(), "k=7");
        assert_eq!(a[3].label(), "binomial");
    }
}
