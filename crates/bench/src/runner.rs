//! The parallel registry runner: two-level fan-out with a
//! deterministic merge.
//!
//! The observatory's work is a forest — independent experiments, each
//! an ordered list of independent sweep units. This module flattens the
//! *entire* forest into one task list for [`crate::pool::run_tasks`],
//! so a wide experiment's units and a narrow experiment's units share
//! the same worker threads (level 1: across experiments, level 2:
//! within one experiment). Unit outcomes come back in submission order;
//! each experiment's chunk is then assembled — text, rows, shapes, and
//! artifacts concatenated in declaration order, finalize last — on the
//! calling thread, in registry order. Because every unit's value is a
//! pure function of its configuration (the simulator is deterministic),
//! the merged output is byte-identical to the sequential run at any
//! `--jobs` count.
//!
//! `jobs <= 1` bypasses all of this and takes the exact legacy
//! sequential path ([`crate::run_experiment_full`] per experiment, in
//! registry order, on the calling thread).

use crate::experiments::{assemble, execute_unit, Experiment, Sweep};
use crate::pool::{run_tasks, Task};
use scc_obs::{ExperimentReport, RunMetrics};

/// One experiment's merged output, exactly what the sequential
/// [`crate::run_experiment_full`] returns.
pub struct ExpOutput {
    pub report: ExperimentReport,
    pub text: String,
    pub artifacts: Vec<(String, String)>,
}

/// Everything one registry execution produced: per-experiment outputs
/// in registry order, plus the run's own scheduling self-metrics.
pub struct RegistryRun {
    pub outputs: Vec<ExpOutput>,
    pub run: RunMetrics,
}

/// Run one experiment with `jobs` workers fanning out over its sweep
/// units. `jobs <= 1` is the exact legacy sequential path.
pub fn run_experiment_jobs(
    exp: &Experiment,
    quick: bool,
    jobs: usize,
) -> (ExperimentReport, String, Vec<(String, String)>) {
    if jobs <= 1 {
        return crate::run_experiment_full(exp, quick);
    }
    let mut sweep = Sweep::new(quick);
    (exp.plan)(&mut sweep);
    let Sweep { units, finalize, .. } = sweep;
    let tasks: Vec<Task<_>> = units
        .into_iter()
        .map(|u| Task { cost: u.cost, run: Box::new(move || execute_unit(u, quick)) as Box<_> })
        .collect();
    let outcomes = run_tasks(jobs, tasks);
    assemble(exp, quick, finalize, outcomes)
}

/// Run a whole registry slice with `jobs` workers shared across *all*
/// experiments' units, merging each experiment deterministically.
pub fn run_registry(reg: Vec<Experiment>, quick: bool, jobs: usize) -> RegistryRun {
    scc_sim::telemetry::reset_peak_in_flight();
    let wall = std::time::Instant::now();

    let outputs: Vec<ExpOutput> = if jobs <= 1 {
        reg.iter()
            .map(|exp| {
                let (report, text, artifacts) = crate::run_experiment_full(exp, quick);
                ExpOutput { report, text, artifacts }
            })
            .collect()
    } else {
        // Plan every experiment, then flatten all units into ONE task
        // list so workers drain the global longest-first queue — a
        // heavyweight fig8b unit can overlap fig3's many light ones.
        let mut tasks: Vec<Task<_>> = Vec::new();
        let mut plans = Vec::with_capacity(reg.len());
        for exp in &reg {
            let mut sweep = Sweep::new(quick);
            (exp.plan)(&mut sweep);
            let Sweep { units, finalize, .. } = sweep;
            plans.push((units.len(), finalize));
            tasks.extend(units.into_iter().map(|u| Task {
                cost: u.cost,
                run: Box::new(move || execute_unit(u, quick)) as Box<_>,
            }));
        }
        let mut rest = run_tasks(jobs, tasks);
        // Unzip the flat outcome list back into per-experiment chunks
        // (submission order == registry-then-declaration order) and
        // finalize each on this thread, in registry order.
        reg.iter()
            .zip(plans)
            .map(|(exp, (len, finalize))| {
                let outcomes = rest.drain(..len).collect();
                let (report, text, artifacts) = assemble(exp, quick, finalize, outcomes);
                ExpOutput { report, text, artifacts }
            })
            .collect()
    };

    let wall_s = wall.elapsed().as_secs_f64();
    let run = RunMetrics {
        jobs: jobs as u64,
        units: outputs.iter().map(|o| o.report.metrics.units).sum(),
        wall_s,
        seq_s: outputs.iter().map(|o| o.report.metrics.wall_s).sum(),
        peak_in_flight: scc_sim::telemetry::peak_in_flight(),
    };
    RegistryRun { outputs, run }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(ids: &[&str]) -> Vec<Experiment> {
        crate::registry().into_iter().filter(|e| ids.contains(&e.id)).collect()
    }

    #[test]
    fn single_experiment_parallel_matches_sequential() {
        let reg = crate::registry();
        let exp = reg.iter().find(|e| e.id == "linkstress").unwrap();
        let (r1, t1, a1) = crate::run_experiment_full(exp, true);
        let (r4, t4, a4) = run_experiment_jobs(exp, true, 4);
        assert_eq!(t1, t4, "linkstress text must be byte-identical at jobs=4");
        assert_eq!(a1, a4);
        assert_eq!(r1.rows.len(), r4.rows.len());
        for (a, b) in r1.rows.iter().zip(&r4.rows) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.sim_measured, b.sim_measured, "{}", a.point);
        }
    }

    #[test]
    fn registry_run_reports_scheduling_metrics() {
        let out = run_registry(slice(&["fig5", "fig6"]), true, 2);
        assert_eq!(out.outputs.len(), 2);
        assert_eq!(out.run.jobs, 2);
        assert!(out.run.units >= 2);
        assert!(out.run.wall_s > 0.0 && out.run.seq_s > 0.0);
        assert_eq!(out.run.units, out.outputs.iter().map(|o| o.report.metrics.units).sum::<u64>());
    }
}
