//! The versioned `BENCH_engine.json` envelope behind the `engine_perf`
//! binary. The assembly lives in the library (not the binary) so the
//! test suite can validate the envelope with
//! `scc_obs::validate_artifact_version` — and the envelope itself comes
//! from `scc_obs::artifact`, the same shared plumbing every other
//! sidecar artifact (`BENCH_faults.json`, `BENCH_soak.json`,
//! `BENCH_journeys.json`, `BENCH_audit.json`) is built on.

use scc_obs::artifact::{count, envelope};
use scc_obs::Json;
use scc_sim::handoff::PoolStats;
use scc_sim::SimStats;

/// One timed engine workload.
pub struct EngineSample {
    pub label: String,
    /// Mean wall-clock seconds per repetition.
    pub wall_s: f64,
    pub stats: SimStats,
}

impl EngineSample {
    pub fn events_per_sec(&self) -> f64 {
        self.stats.events as f64 / self.wall_s
    }
}

fn json_sample(s: &EngineSample) -> Json {
    Json::obj()
        .set("label", Json::Str(s.label.clone()))
        .set("wall_s", Json::Num(s.wall_s))
        .set("events", count(s.stats.events))
        .set("events_per_sec", Json::Num(s.events_per_sec().round()))
        .set("heap_pushes", count(s.stats.heap_pushes))
        .set("coalesced_steps", count(s.stats.coalesced_steps))
        .set("handoffs", count(s.stats.handoffs))
        .set("lines_moved", count(s.stats.lines_moved))
}

/// Render the `BENCH_engine.json` document: the shared versioned
/// envelope, the run configuration, every sample, and the pool totals.
pub fn engine_artifact(
    quick: bool,
    reps: u32,
    samples: &[EngineSample],
    pool: &PoolStats,
) -> String {
    let total_wall: f64 = samples.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = samples.iter().map(|s| s.stats.events).sum();
    let totals = Json::obj()
        .set("wall_s", Json::Num(total_wall))
        .set("events", count(total_events))
        .set(
            "events_per_sec",
            Json::Num(if total_wall > 0.0 {
                (total_events as f64 / total_wall).round()
            } else {
                0.0
            }),
        )
        .set("workers_spawned", count(pool.spawned))
        .set("workers_reused", count(pool.reused))
        .set("workers_retired", count(pool.retired))
        .set("peak_pooled", count(pool.peak_pooled))
        .set("pool_cap", count(pool.cap));
    let mut doc = envelope("engine_perf")
        .set("quick", Json::Bool(quick))
        .set("reps", Json::Int(i64::from(reps)))
        .set("samples", Json::Arr(samples.iter().map(json_sample).collect()))
        .set("totals", totals)
        .render();
    doc.push('\n');
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_obs::validate_artifact_version;

    fn sample_doc() -> String {
        let samples = vec![EngineSample {
            label: "null_p48".into(),
            wall_s: 0.001,
            stats: SimStats { events: 96, ..SimStats::default() },
        }];
        let pool = PoolStats { spawned: 48, reused: 96, retired: 0, peak_pooled: 48, cap: 64 };
        engine_artifact(true, 1, &samples, &pool)
    }

    #[test]
    fn engine_artifact_parses_and_carries_the_version() {
        let doc = Json::parse(&sample_doc()).expect("valid JSON");
        validate_artifact_version(&doc).expect("version stamp");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("engine_perf"));
        let samples = doc.get("samples").and_then(Json::as_arr).expect("samples");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].get("events").and_then(Json::as_i64), Some(96));
        assert_eq!(
            doc.get("totals").and_then(|t| t.get("workers_spawned")).and_then(Json::as_i64),
            Some(48)
        );
    }

    #[test]
    fn stale_or_missing_version_is_rejected() {
        let doc = Json::parse(&sample_doc()).unwrap();
        let stale = doc.clone().set("version", Json::Int(999));
        assert!(validate_artifact_version(&stale).unwrap_err().contains("999"));
        // A pre-version document (the old envelope) must fail loudly.
        let legacy = Json::obj().set("bench", Json::Str("engine_perf".into()));
        assert!(validate_artifact_version(&legacy).unwrap_err().contains("no integer"));
    }
}
