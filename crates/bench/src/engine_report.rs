//! The versioned `BENCH_engine.json` envelope behind the `engine_perf`
//! binary. The assembly lives in the library (not the binary) so the
//! test suite can validate the envelope with
//! `scc_obs::validate_artifact_version` — the same gate every other
//! sidecar artifact (`BENCH_obs.json`, `BENCH_whatif.json`,
//! `BENCH_journeys.json`) passes through.

use scc_obs::ARTIFACT_VERSION;
use scc_sim::handoff::PoolStats;
use scc_sim::SimStats;
use std::fmt::Write as _;

/// One timed engine workload.
pub struct EngineSample {
    pub label: String,
    /// Mean wall-clock seconds per repetition.
    pub wall_s: f64,
    pub stats: SimStats,
}

impl EngineSample {
    pub fn events_per_sec(&self) -> f64 {
        self.stats.events as f64 / self.wall_s
    }
}

fn json_sample(out: &mut String, s: &EngineSample, indent: &str) {
    let _ = write!(
        out,
        "{indent}{{\"label\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}, \
         \"heap_pushes\": {}, \"coalesced_steps\": {}, \"handoffs\": {}, \"lines_moved\": {}}}",
        s.label,
        s.wall_s,
        s.stats.events,
        s.events_per_sec(),
        s.stats.heap_pushes,
        s.stats.coalesced_steps,
        s.stats.handoffs,
        s.stats.lines_moved,
    );
}

/// Render the `BENCH_engine.json` document: the `"version"` stamp
/// (checked by [`scc_obs::validate_artifact_version`]), the run
/// configuration, every sample, and the pool totals.
pub fn engine_artifact(
    quick: bool,
    reps: u32,
    samples: &[EngineSample],
    pool: &PoolStats,
) -> String {
    let total_wall: f64 = samples.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = samples.iter().map(|s| s.stats.events).sum();
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"engine_perf\",\n");
    let _ = writeln!(out, "  \"version\": {ARTIFACT_VERSION},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json_sample(&mut out, s, "    ");
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"totals\": {{\"wall_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}, \
         \"workers_spawned\": {}, \"workers_reused\": {}, \"workers_retired\": {}, \
         \"peak_pooled\": {}, \"pool_cap\": {}}}",
        total_wall,
        total_events,
        if total_wall > 0.0 { total_events as f64 / total_wall } else { 0.0 },
        pool.spawned,
        pool.reused,
        pool.retired,
        pool.peak_pooled,
        pool.cap
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_obs::{validate_artifact_version, Json};

    fn sample_doc() -> String {
        let samples = vec![EngineSample {
            label: "null_p48".into(),
            wall_s: 0.001,
            stats: SimStats { events: 96, ..SimStats::default() },
        }];
        let pool = PoolStats { spawned: 48, reused: 96, retired: 0, peak_pooled: 48, cap: 64 };
        engine_artifact(true, 1, &samples, &pool)
    }

    #[test]
    fn engine_artifact_parses_and_carries_the_version() {
        let doc = Json::parse(&sample_doc()).expect("valid JSON");
        validate_artifact_version(&doc).expect("version stamp");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("engine_perf"));
        let samples = doc.get("samples").and_then(Json::as_arr).expect("samples");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].get("events").and_then(Json::as_i64), Some(96));
        assert_eq!(
            doc.get("totals").and_then(|t| t.get("workers_spawned")).and_then(Json::as_i64),
            Some(48)
        );
    }

    #[test]
    fn stale_or_missing_version_is_rejected() {
        let doc = Json::parse(&sample_doc()).unwrap();
        let stale = doc.clone().set("version", Json::Int(999));
        assert!(validate_artifact_version(&stale).unwrap_err().contains("999"));
        // A pre-version document (the old envelope) must fail loudly.
        let legacy = Json::obj().set("bench", Json::Str("engine_perf".into()));
        assert!(validate_artifact_version(&legacy).unwrap_err().contains("no integer"));
    }
}
